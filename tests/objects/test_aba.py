"""ABA modeling end-to-end: manual reclamation breaks the Treiber stack.

Validates the heap model's free/reallocate semantics: freed nodes that
are still referenced are reallocation candidates, so a pop holding a
stale snapshot can succeed against a recycled node.  The quotient-
refinement check finds the resulting double-pop automatically -- and
the hazard-pointer variant (Table II row 2) on the *same* workload does
not exhibit it, which is precisely what hazard pointers are for.
"""

from collections import Counter

import pytest

from repro.objects import get
from repro.objects.treiber import build_manual_reclamation
from repro.verify import check_linearizability

pytestmark = pytest.mark.slow

WORKLOAD = [("push", (1,)), ("push", (2,)), ("pop", ())]
BUDGETS = (2, 3)


def test_manual_reclamation_is_not_linearizable():
    result = check_linearizability(
        build_manual_reclamation(2), get("treiber").spec(),
        num_threads=2, ops_per_thread=BUDGETS, workload=WORKLOAD,
    )
    assert not result.linearizable
    # The history double-pops some value: more successful pops of v
    # than pushes of v.
    pushes = Counter()
    pops = Counter()
    pending = {}
    for label in result.counterexample:
        if label[0] == "call":
            pending[label[1]] = label
        elif label[2] == "push":
            pushes[pending[label[1]][3][0]] += 1
        elif label[2] == "pop" and label[3] != "EMPTY":
            pops[label[3]] += 1
    assert any(pops[v] > pushes[v] for v in pops)


def test_hazard_pointers_fix_the_same_workload():
    bench = get("treiber_hp")
    result = check_linearizability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=BUDGETS, workload=WORKLOAD,
    )
    assert result.linearizable
