"""Golden state-space sizes (regression canaries).

These pin the exact state counts of a few benchmark explorations and
their quotients.  They are *encoding-sensitive by design*: any change
to the operational semantics, the canonicalization, the fusion rule or
a benchmark model moves them, which is exactly what we want to notice.
If you change the encoding deliberately, update the numbers (and
re-check EXPERIMENTS.md, which quotes some of them).
"""

import pytest

from repro.core import branching_partition, num_blocks, quotient_lts
from repro.lang import ClientConfig, explore, spec_lts
from repro.objects import get

pytestmark = pytest.mark.slow

GOLDEN = {
    # key: (threads, ops, |D|, |D/~|)
    "treiber": (2, 2, 10505, 388),
    "ms_queue": (2, 2, 36175, 337),
    "dglm_queue": (2, 2, 32811, 337),
    "newcas": (2, 2, 1013, 182),
    "hw_queue": (2, 2, 4790, 179),
    "ccas": (2, 2, 8380, 253),
}


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_exploration_sizes(key):
    threads, ops, states, quotient_states = GOLDEN[key]
    bench = get(key)
    system = explore(
        bench.build(threads), ClientConfig(threads, ops, bench.default_workload())
    )
    assert system.num_states == states
    quotient = quotient_lts(system, branching_partition(system))
    assert quotient.lts.num_states == quotient_states


def test_golden_ms_and_dglm_share_quotient_size():
    assert GOLDEN["ms_queue"][3] == GOLDEN["dglm_queue"][3]


def test_golden_spec_sizes():
    bench = get("ms_queue")
    spec_system = spec_lts(bench.spec(), 2, 2, bench.default_workload())
    assert spec_system.num_states == 1379
    blocks = branching_partition(spec_system)
    assert num_blocks(blocks) == 337
