"""Extra algorithms beyond the paper's 14 (see repro.objects.extras)."""

import pytest

from repro.objects.extras import EXTRAS
from repro.verify import (
    check_linearizability,
    check_lock_freedom_auto,
    check_obstruction_freedom,
)

BOUNDS = dict(num_threads=2, ops_per_thread=2)


@pytest.mark.parametrize("key", sorted(EXTRAS))
def test_extras_are_linearizable(key):
    bench = EXTRAS[key]
    result = check_linearizability(
        bench.build(2), bench.spec(), workload=bench.default_workload(), **BOUNDS,
    )
    assert result.linearizable


def test_two_lock_queue_allows_concurrent_enq_deq():
    """Head and tail locks are distinct: an enqueue can interleave with
    a dequeue strictly between the dequeue's lock and unlock."""
    from repro.lang import ClientConfig, explore

    bench = EXTRAS["two_lock_queue"]
    lts = explore(bench.build(2), ClientConfig(2, 1, bench.default_workload()))
    # Find a state where both locks are held simultaneously.
    program = bench.build(2)
    head_lock = program.global_index["HeadLock"]
    tail_lock = program.global_index["TailLock"]
    # State keys are interned; rebuild via fresh exploration bookkeeping:
    from repro.core.lts import LTSBuilder
    from repro.lang.client import ClientConfig as CC
    from repro.lang import explore as _explore  # noqa: F401  (doc pointer)
    # Instead of reaching into internals, assert via action structure:
    # a (call enq by t1, call deq by t2) overlap that completes both ways.
    labels = {lts.action_labels[a] for _s, a, _d in lts.transitions()}
    assert ("ret", 1, "enq", None) in labels or ("ret", 2, "enq", None) in labels
    assert any(l[0] == "ret" and l[2] == "deq" for l in labels)


@pytest.mark.slow
def test_tagged_treiber_fixes_the_aba_bug():
    """Same manual-free reclamation as the ABA-broken variant, same
    workload and budgets -- but version tags make it linearizable."""
    bench = EXTRAS["tagged_treiber"]
    workload = [("push", (1,)), ("push", (2,)), ("pop", ())]
    result = check_linearizability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=(2, 3), workload=workload,
    )
    assert result.linearizable


@pytest.mark.slow
def test_tagged_treiber_is_lock_free_and_obstruction_free():
    bench = EXTRAS["tagged_treiber"]
    lock = check_lock_freedom_auto(
        bench.build(2), workload=bench.default_workload(), **BOUNDS,
    )
    assert lock.lock_free
    obstruction = check_obstruction_freedom(
        bench.build(2), workload=bench.default_workload(), **BOUNDS,
    )
    assert obstruction.obstruction_free


def test_coarse_list_sequentialises_everything():
    """Under the global lock, the object system's quotient is tiny --
    comparable to the specification's quotient."""
    from repro.core import branching_partition, quotient_lts
    from repro.lang import ClientConfig, explore, spec_lts

    bench = EXTRAS["coarse_list"]
    workload = bench.default_workload()
    system = explore(bench.build(2), ClientConfig(2, 2, workload))
    spec_system = spec_lts(bench.spec(), 2, 2, workload)
    system_quotient = quotient_lts(system, branching_partition(system)).lts
    spec_quotient = quotient_lts(spec_system, branching_partition(spec_system)).lts
    assert system_quotient.num_states <= spec_quotient.num_states * 2
