"""Theorem 5.8 preconditions: concrete ~div abstract (Section VI.C/D)."""

import pytest

from repro.core import compare_branching, tau_cycle_states
from repro.lang import ClientConfig, explore
from repro.objects import get
from repro.verify import check_lock_freedom_abstract

pytestmark = pytest.mark.slow

ABSTRACTED = ["ms_queue", "dglm_queue", "ccas", "rdcss"]


@pytest.mark.parametrize("key", ABSTRACTED)
def test_concrete_div_bisimilar_to_abstract(key):
    bench = get(key)
    workload = bench.default_workload()
    result = check_lock_freedom_abstract(
        bench.build(2), bench.abstract(2),
        num_threads=2, ops_per_thread=2, workload=workload,
    )
    assert result.div_bisimilar
    assert result.abstract_lock_free is True
    assert result.lock_free is True
    assert result.abstract_states < result.concrete_states


def test_ms_and_dglm_share_the_abstract_object():
    """Table VI: both queues have the same abstract object and quotient."""
    ms, dglm = get("ms_queue"), get("dglm_queue")
    workload = ms.default_workload()
    config = ClientConfig(2, 2, workload)
    ms_lts = explore(ms.build(2), config)
    dglm_lts = explore(dglm.build(2), config)
    assert compare_branching(ms_lts, dglm_lts, divergence=True).equivalent


def test_abstract_queue_empty_lp_interleaving():
    """Fig. 8's point: the abstract dequeue can decide EMPTY (block L42)
    and return after a concurrent enqueue completed."""
    bench = get("ms_queue")
    abstract = bench.abstract(2)
    lts = explore(abstract, ClientConfig(2, 1, bench.default_workload()))
    # look for a path: call deq(t1), call enq(t2), ... ret enq, ret deq EMPTY
    from repro.core import TAU_ID
    from repro.lang import EMPTY

    # simple DFS over (state, saw_enq_ret) searching the pattern
    target_ret = ("ret", 1, "deq", EMPTY)
    enq_ret = ("ret", 2, "enq", None)
    found = []
    seen = set()
    stack = [(lts.init, False)]
    while stack:
        state, seen_enq = stack.pop()
        if (state, seen_enq) in seen:
            continue
        seen.add((state, seen_enq))
        for aid, dst in lts.successors(state):
            label = lts.action_labels[aid]
            if label == target_ret and seen_enq:
                found.append(state)
                stack.clear()
                break
            stack.append((dst, seen_enq or label == enq_ret))
    assert found, "abstract queue lost the non-fixed empty LP behaviour"
