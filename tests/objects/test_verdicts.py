"""Table II integration tests: every benchmark gets the paper's verdict.

Bounds are kept small (2 threads x 2 ops, 2 values) so the whole matrix
runs in about a minute of CPython time; the benches rerun the same
pipelines at larger bounds.
"""

import pytest

from repro.objects import all_benchmarks, get
from repro.verify import check_lock_freedom_auto, check_linearizability

pytestmark = pytest.mark.slow

BOUNDS = dict(num_threads=2, ops_per_thread=2)


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks()]
)
def test_linearizability_verdict(key):
    bench = get(key)
    result = check_linearizability(
        bench.build(BOUNDS["num_threads"]),
        bench.spec(),
        workload=bench.default_workload(),
        **BOUNDS,
    )
    assert result.linearizable == bench.expect_linearizable
    if not bench.expect_linearizable:
        assert result.counterexample is not None


@pytest.mark.parametrize(
    "key",
    [bench.key for bench in all_benchmarks() if bench.expect_lock_free is not None],
)
def test_lock_freedom_verdict(key):
    bench = get(key)
    result = check_lock_freedom_auto(
        bench.build(BOUNDS["num_threads"]),
        workload=bench.default_workload(),
        **BOUNDS,
    )
    assert result.lock_free == bench.expect_lock_free
    if not bench.expect_lock_free:
        assert result.diagnostic is not None


def test_quotients_are_much_smaller():
    bench = get("ms_queue")
    result = check_linearizability(
        bench.build(2), bench.spec(), workload=bench.default_workload(), **BOUNDS
    )
    assert result.reduction_factor > 20
