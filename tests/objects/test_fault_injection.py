"""Fault injection: seeded bugs that the checkers must catch.

Mutates the benchmark algorithms in small, realistic ways (the kind of
slip a programmer makes) and asserts the pipelines detect each fault.
This guards against the checkers silently passing everything.
"""

import pytest

from repro.lang import (
    Alloc,
    CasGlobal,
    ClientConfig,
    EMPTY,
    HeapBuilder,
    If,
    Method,
    ObjectProgram,
    ReadField,
    ReadGlobal,
    Return,
    While,
    WriteField,
    WriteGlobal,
    stack_spec,
    queue_spec,
)
from repro.objects.treiber import NODE_FIELDS as STACK_FIELDS, pop_method
from repro.objects.ms_queue import NODE_FIELDS as QUEUE_FIELDS, enqueue_method
from repro.verify import check_linearizability, check_lock_freedom_auto

BOUNDS = dict(num_threads=2, ops_per_thread=2)


def test_push_without_cas_is_not_linearizable():
    """Treiber push with a plain write instead of CAS: lost updates."""
    broken_push = Method(
        "push",
        params=["v"],
        locals_={"node": None, "t": None},
        body=[
            Alloc("node", val="v", next=None).at("B1"),
            ReadGlobal("t", "Top").at("B2"),
            WriteField("node", "next", "t").at("B3"),
            WriteGlobal("Top", "node").at("B4"),   # FAULT: no CAS
            Return(None).at("B5"),
        ],
    )
    program = ObjectProgram(
        "broken-stack",
        methods=[broken_push, pop_method()],
        globals_={"Top": None},
        node_fields=STACK_FIELDS,
    )
    result = check_linearizability(
        program, stack_spec(),
        workload=[("push", (1,)), ("push", (2,)), ("pop", ())], **BOUNDS,
    )
    assert not result.linearizable


@pytest.mark.slow
def test_enqueue_skipping_validation_still_linearizable_but_detectable():
    """MS dequeue with the L21 validation removed.

    Removing the head re-read validation does not break FIFO semantics
    under GC (the L28 CAS still guards the commit), so linearizability
    must still hold -- a check that the tooling does not produce false
    positives on a benign mutation.
    """
    deq_no_validation = Method(
        "deq",
        params=[],
        locals_={"h": None, "t": None, "n": None, "v": None, "b": False},
        body=[
            While(True, [
                ReadGlobal("h", "Head").at("L18"),
                ReadGlobal("t", "Tail").at("L19"),
                ReadField("n", "h", "next").at("L20"),
                If(lambda L: L["h"] == L["t"], [
                    If(lambda L: L["n"] is None, [Return(EMPTY).at("L23")], [
                        CasGlobal(None, "Tail", "t", "n").at("L24"),
                    ]),
                ], [
                    ReadField("v", "n", "val").at("L26"),
                    CasGlobal("b", "Head", "h", "n").at("L28"),
                    If("b", [Return("v").at("L29")]),
                ]),
            ]).at("L17"),
        ],
    )
    heap = HeapBuilder(QUEUE_FIELDS)
    sentinel = heap.alloc(val=0, next=None)
    program = ObjectProgram(
        "ms-queue-no-validation",
        methods=[enqueue_method(), deq_no_validation],
        globals_={"Head": sentinel, "Tail": sentinel},
        node_fields=QUEUE_FIELDS,
        initial_heap=heap.heap(),
    )
    result = check_linearizability(
        program, queue_spec(),
        workload=[("enq", (1,)), ("enq", (2,)), ("deq", ())], **BOUNDS,
    )
    assert result.linearizable


def test_enqueue_with_plain_link_write_crashes_a_dequeuer():
    """MS enqueue linking with a plain write instead of the L8 CAS.

    The lost-update race corrupts the list structure badly enough that
    a dequeuer dereferences null -- surfacing as a ``ModelError`` during
    exploration (the model-level analogue of a segfault).  Memory-safety
    violations are reported as errors rather than silently ignored.
    """
    broken_enq = Method(
        "enq",
        params=["v"],
        locals_={"node": None, "t": None},
        body=[
            Alloc("node", val="v", next=None).at("B2"),
            ReadGlobal("t", "Tail").at("B4"),
            WriteField("t", "next", "node").at("B8"),   # FAULT: no CAS
            CasGlobal(None, "Tail", "t", "node").at("B15"),
            Return(None).at("B16"),
        ],
    )
    from repro.objects.ms_queue import dequeue_method

    heap = HeapBuilder(QUEUE_FIELDS)
    sentinel = heap.alloc(val=0, next=None)
    program = ObjectProgram(
        "ms-queue-broken-enq",
        methods=[broken_enq, dequeue_method()],
        globals_={"Head": sentinel, "Tail": sentinel},
        node_fields=QUEUE_FIELDS,
        initial_heap=heap.heap(),
    )
    import pytest
    from repro.lang import ModelError

    with pytest.raises(ModelError, match="non-pointer"):
        check_linearizability(
            program, queue_spec(),
            workload=[("enq", (1,)), ("enq", (2,)), ("deq", ())], **BOUNDS,
        )


def test_injected_spin_loop_breaks_lock_freedom():
    """A busy-wait on a flag nobody clears: detected as divergence."""
    spin_method = Method(
        "spin_wait",
        params=[],
        locals_={"f": None},
        body=[
            While(True, [
                ReadGlobal("f", "Flag").at("S1"),
                If(lambda L: not L["f"], [Return(None).at("S2")]),
            ]).at("S0"),
        ],
    )
    set_method = Method(
        "set", params=[],
        body=[WriteGlobal("Flag", True).at("W1"), Return(None).at("W2")],
    )
    program = ObjectProgram(
        "spinner", methods=[spin_method, set_method], globals_={"Flag": False},
    )
    result = check_lock_freedom_auto(
        program, workload=[("spin_wait", ()), ("set", ())], **BOUNDS,
    )
    assert not result.lock_free
    assert result.diagnostic is not None
    cycle_lines = {step.annotation for step in result.diagnostic.cycle}
    assert any(ann and ann.endswith("S1") for ann in cycle_lines)
