"""Shared backoff policy: schedule regression, jitter bounds, retry loop.

The policy was extracted from the supervisor's inline requeue formula;
the first test pins the extraction -- policy delays must equal the
historical ``min(base * 2**(n-1), cap)`` for every attempt number, or
shard requeue scheduling silently changed.
"""

import random

import pytest

from repro.parallel import ParallelConfig
from repro.util.retry import BackoffPolicy, RetriesExhausted, retry_call


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------

def test_policy_matches_historical_supervisor_formula():
    parallel = ParallelConfig(workers=1)
    policy = parallel.backoff_policy()
    for attempt in range(1, 12):
        historical = min(
            parallel.backoff_base * (2 ** (attempt - 1)), parallel.backoff_cap
        )
        assert policy.delay(attempt) == historical


def test_policy_caps_and_grows():
    policy = BackoffPolicy(base=0.1, cap=1.0)
    delays = list(policy.delays(8))
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert delays == sorted(delays)  # monotone
    assert delays[-1] == 1.0  # capped
    assert max(delays) <= 1.0


def test_policy_without_jitter_is_deterministic():
    policy = BackoffPolicy(base=0.05, cap=2.0)
    assert list(policy.delays(6)) == list(policy.delays(6))


def test_jitter_stays_within_relative_bounds():
    policy = BackoffPolicy(base=0.2, cap=5.0, jitter=0.5)
    rng = random.Random(42)
    for attempt in range(1, 10):
        nominal = min(0.2 * 2 ** (attempt - 1), 5.0)
        for _ in range(50):
            delay = policy.delay(attempt, rng=rng)
            assert 0.5 * nominal <= delay <= 1.5 * nominal


def test_decorrelated_schedule_stays_within_envelope():
    # AWS-style decorrelated jitter: each delay is uniform in
    # [base, prev * 3], clamped to cap.  Never below base, never above
    # cap, and not deterministic.
    policy = BackoffPolicy(base=0.05, cap=2.0, decorrelated=True)
    schedule = policy.session(random.Random(7))
    prev = policy.base
    for _ in range(100):
        delay = schedule.next_delay()
        assert policy.base <= delay <= policy.cap
        assert delay <= max(policy.base, min(policy.cap, prev * 3.0))
        prev = delay


def test_decorrelated_sessions_are_independent_streams():
    policy = BackoffPolicy(base=0.05, cap=2.0, decorrelated=True)
    a = [policy.session(random.Random(1)).next_delay() for _ in range(5)]
    b = [policy.session(random.Random(2)).next_delay() for _ in range(5)]
    assert a != b  # different rngs decorrelate endpoints


def test_decorrelated_off_by_default_schedule_matches_delay():
    # Without the flag, session schedules reproduce the exponential
    # formula exactly -- the pinned supervisor regression above must
    # keep holding for schedule users too.
    policy = BackoffPolicy(base=0.1, cap=1.0)
    schedule = policy.session()
    for attempt in range(1, 8):
        assert schedule.next_delay() == policy.delay(attempt)


def test_invalid_policies_rejected():
    with pytest.raises(ValueError):
        BackoffPolicy(base=-0.1)
    with pytest.raises(ValueError):
        BackoffPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        BackoffPolicy().delay(0)


# ----------------------------------------------------------------------
# retry_call
# ----------------------------------------------------------------------

def test_retry_call_returns_first_success():
    calls = []

    def fn():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("transient")
        return "ok"

    slept = []
    result = retry_call(
        fn, attempts=5, policy=BackoffPolicy(base=0.01, cap=0.04),
        sleep=slept.append,
    )
    assert result == "ok"
    assert len(calls) == 3
    # One sleep per failed attempt, following the schedule.
    assert slept == [pytest.approx(0.01), pytest.approx(0.02)]


def test_retry_call_raises_retries_exhausted_with_last_cause():
    def fn():
        raise ConnectionRefusedError("nope")

    slept = []
    with pytest.raises(RetriesExhausted) as info:
        retry_call(
            fn, attempts=3, policy=BackoffPolicy(base=0.01, cap=1.0),
            sleep=slept.append,
        )
    assert info.value.attempts == 3
    assert isinstance(info.value.last, ConnectionRefusedError)
    assert len(slept) == 2  # no sleep after the final failure


def test_retry_call_does_not_retry_unexpected_exceptions():
    calls = []

    def fn():
        calls.append(1)
        raise ValueError("a bug, not a transient")

    with pytest.raises(ValueError):
        retry_call(
            fn, attempts=5, policy=BackoffPolicy(), sleep=lambda _s: None,
        )
    assert len(calls) == 1


def test_retry_call_rejects_zero_attempts():
    with pytest.raises(ValueError):
        retry_call(lambda: 1, attempts=0, policy=BackoffPolicy())
