"""Unit tests for the run-budget governance layer (repro.util.budget)."""

import os
import signal
import time

import pytest

from repro.util.budget import (
    ALL_REASONS,
    EXIT_FALSE,
    EXIT_INTERRUPTED,
    EXIT_TRUE,
    EXIT_UNKNOWN,
    FALSE,
    REASON_DEADLINE,
    REASON_INTERRUPTED,
    REASON_RSS,
    REASON_STATES,
    REASON_TRANSITIONS,
    TRUE,
    UNKNOWN,
    BudgetExhausted,
    CancellationToken,
    Exhaustion,
    RunBudget,
    exit_code_for,
    verdict_of,
)


def test_verdict_of_maps_the_three_values():
    assert verdict_of(True) == TRUE
    assert verdict_of(False) == FALSE
    assert verdict_of(None) == UNKNOWN


def test_exit_codes():
    assert exit_code_for(TRUE) == EXIT_TRUE == 0
    assert exit_code_for(FALSE) == EXIT_FALSE == 1
    assert exit_code_for(UNKNOWN) == EXIT_UNKNOWN == 2
    assert EXIT_INTERRUPTED == 130


def test_unlimited_budget_never_fires():
    budget = RunBudget()
    for _ in range(1000):
        budget.check("explore", states=10**9, transitions=10**9)


def test_state_cap_fires_with_progress_snapshot():
    budget = RunBudget(max_states=10)
    budget.check("explore", states=10)
    with pytest.raises(BudgetExhausted) as exc:
        budget.check("explore", states=11, transitions=7, frontier=3)
    exhaustion = exc.value.exhaustion
    assert exhaustion.reason == REASON_STATES
    assert exhaustion.phase == "explore"
    assert exhaustion.progress["states"] == 11
    assert exhaustion.progress["transitions"] == 7
    assert exhaustion.progress["frontier"] == 3


def test_transition_cap_fires():
    budget = RunBudget(max_transitions=5)
    with pytest.raises(BudgetExhausted) as exc:
        budget.check("reduce", transitions=6)
    assert exc.value.reason == REASON_TRANSITIONS


def test_deadline_fires_on_first_strided_probe():
    budget = RunBudget(deadline_seconds=0.0)
    with pytest.raises(BudgetExhausted) as exc:
        budget.check("refinement", states=1)
    assert exc.value.reason == REASON_DEADLINE
    assert exc.value.phase == "refinement"


def test_deadline_is_strided_not_per_call():
    # A generous deadline is only probed every check_interval calls; the
    # counters still guard every call.
    budget = RunBudget(deadline_seconds=3600.0, check_interval=64)
    for _ in range(500):
        budget.check("explore", states=1)
    assert budget.remaining_seconds() > 0


def test_rss_cap_fires():
    budget = RunBudget(max_rss_kb=1)  # any real process exceeds 1 KiB
    with pytest.raises(BudgetExhausted) as exc:
        budget.check("check")
    assert exc.value.reason == REASON_RSS


def test_cancellation_token_fires_every_call():
    token = CancellationToken()
    budget = RunBudget(token=token, check_interval=10**9)
    budget.check("explore")
    token.set()
    with pytest.raises(BudgetExhausted) as exc:
        budget.check("explore", states=42)
    assert exc.value.reason == REASON_INTERRUPTED
    token.clear()
    budget.check("explore")


def test_restart_resets_the_clock():
    budget = RunBudget(deadline_seconds=0.05)
    time.sleep(0.06)
    with pytest.raises(BudgetExhausted):
        budget.check("explore")
    budget.restart()
    budget.check("explore")  # fresh deadline window


def test_exhaustion_render_and_dict_round_trip():
    exhaustion = Exhaustion(
        reason=REASON_STATES, phase="explore", limit="max_states=50",
        progress={"states": 51},
    )
    text = exhaustion.render()
    assert "explore" in text and "max_states=50" in text and "states=51" in text
    payload = exhaustion.to_dict()
    assert payload["schema"] == "repro.exhaustion/v1"
    assert payload["reason"] == REASON_STATES
    assert payload["progress"] == {"states": 51}
    assert REASON_STATES in ALL_REASONS


def test_install_sigint_graceful_then_restores(monkeypatch):
    budget = RunBudget()
    previous = signal.getsignal(signal.SIGINT)
    with budget.install_sigint():
        os.kill(os.getpid(), signal.SIGINT)
        # first Ctrl-C: no KeyboardInterrupt, the token is set instead
        deadline = time.monotonic() + 2.0
        while not budget.token.is_set() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert budget.token.is_set()
        with pytest.raises(BudgetExhausted) as exc:
            budget.check("explore")
        assert exc.value.reason == REASON_INTERRUPTED
    assert signal.getsignal(signal.SIGINT) == previous


def test_install_sigint_second_interrupt_raises():
    budget = RunBudget()
    with budget.install_sigint():
        handler = signal.getsignal(signal.SIGINT)
        handler(signal.SIGINT, None)
        with pytest.raises(KeyboardInterrupt):
            handler(signal.SIGINT, None)
