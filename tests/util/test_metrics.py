"""Unit tests for the metrics sink + the pay-for-what-you-use guard."""

import time

import pytest

from repro.core.partition import refine_to_fixpoint
from repro.lang import ClientConfig
from repro.lang.client import _explore, explore
from repro.objects import get
from repro.util.metrics import Stats, peak_rss_kb, stage


def test_stage_nesting_builds_paths():
    stats = Stats()
    with stats.stage("quotient"):
        time.sleep(0.001)
        with stats.stage("refinement"):
            time.sleep(0.001)
    assert set(stats.stage_seconds) == {"quotient", "quotient/refinement"}
    assert stats.stage_seconds["quotient"] >= stats.stage_seconds["quotient/refinement"] > 0
    # Only the top-level stage counts toward the total.
    assert stats.total_seconds == stats.stage_seconds["quotient"]


def test_stage_reentry_accumulates():
    stats = Stats()
    for _ in range(3):
        with stats.stage("explore"):
            stats.count("states", 10)
    assert stats.counters == {"explore.states": 30}
    assert list(stats.stage_seconds) == ["explore"]


def test_stage_name_validation():
    stats = Stats()
    with pytest.raises(ValueError):
        with stats.stage("a/b"):
            pass
    with pytest.raises(ValueError):
        with stats.stage("a.b"):
            pass


def test_counters_attributed_to_active_stage():
    stats = Stats()
    stats.count("loose")
    with stats.stage("check"):
        stats.count("visited", 5)
        with stats.stage("inner"):
            stats.count("deep", 2)
    assert stats.counters == {
        "loose": 1,
        "check.visited": 5,
        "check/inner.deep": 2,
    }
    assert stats.stage_counters("check") == {"visited": 5}
    assert stats.stage_counters("check/inner") == {"deep": 2}


def test_counters_are_monotonic():
    stats = Stats()
    stats.count("n", 0)
    with pytest.raises(ValueError):
        stats.count("n", -1)


def test_merge_sums_and_maxes():
    a, b = Stats(), Stats()
    with a.stage("explore"):
        a.count("states", 1)
    with b.stage("explore"):
        b.count("states", 2)
    b.peak_rss_kb = a.peak_rss_kb + 7
    a.merge(b)
    assert a.counters == {"explore.states": 3}
    assert a.peak_rss_kb == b.peak_rss_kb


def test_rss_sampling():
    assert peak_rss_kb() > 0
    stats = Stats()
    with stats.stage("s"):
        pass
    assert stats.peak_rss_kb == pytest.approx(peak_rss_kb(), rel=0.5)


def test_to_dict_and_render():
    stats = Stats()
    with stats.stage("explore"):
        stats.count("states", 42)
    snapshot = stats.to_dict()
    assert snapshot["schema"] == Stats.SCHEMA
    assert snapshot["stages"][0]["stage"] == "explore"
    assert snapshot["counters"] == {"explore.states": 42}
    assert snapshot["total_seconds"] == stats.total_seconds
    text = stats.render(title="t")
    assert "explore" in text and "states=42" in text and "total" in text


def test_module_stage_helper_handles_none():
    with stage(None, "anything"):
        pass
    stats = Stats()
    with stage(stats, "real"):
        pass
    assert "real" in stats.stage_seconds


def test_refine_to_fixpoint_records_counters():
    stats = Stats()
    # Two states distinguished by a static signature: one sweep, one split.
    block_of = refine_to_fixpoint(
        2, lambda blocks: [(s % 2,) for s in range(2)], stats=stats
    )
    assert block_of[0] != block_of[1]
    assert stats.counters["states"] == 2
    assert stats.counters["sweeps"] >= 1
    assert stats.counters["splits"] >= 1


def test_explore_records_and_matches_uninstrumented():
    bench = get("newcas")
    config = ClientConfig(2, 1, bench.default_workload())
    stats = Stats()
    instrumented = explore(bench.build(2), config, stats=stats)
    plain = explore(bench.build(2), config)
    assert instrumented.num_states == plain.num_states
    assert instrumented.num_transitions == plain.num_transitions
    assert stats.counters["explore.states"] == plain.num_states
    assert stats.counters["explore.transitions"] == plain.num_transitions
    assert stats.stage_seconds["explore"] > 0


def test_disabled_stats_overhead_within_tolerance():
    """stats=None must take the same code path as the uninstrumented body.

    Min-of-N wall times of the public wrapper with ``stats=None`` vs the
    private body; ISSUE bound is 5%, plus a small epsilon for timer
    jitter at these millisecond scales.
    """
    bench = get("ms_queue")
    config = ClientConfig(2, 1, bench.default_workload())

    def run_public():
        return explore(bench.build(2), config, stats=None)

    def run_body():
        return _explore(bench.build(2), config)

    run_public(), run_body()  # warm up
    best_public = min(
        _timed(run_public) for _ in range(5)
    )
    best_body = min(
        _timed(run_body) for _ in range(5)
    )
    assert best_public <= best_body * 1.05 + 0.005


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
