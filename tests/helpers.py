"""Shared helpers for the test suite: brute-force oracles and generators.

The brute-force functions here implement the definitions from the paper
directly (bounded trace enumeration, naive bisimulation games) and are
used as oracles against the production algorithms on small systems.
"""

from __future__ import annotations

from itertools import product
from typing import FrozenSet, Hashable, List, Set, Tuple

from hypothesis import strategies as st

from repro.core import LTS, TAU_ID, make_lts


def bounded_traces(lts: LTS, start: int, max_len: int) -> Set[Tuple[Hashable, ...]]:
    """All visible traces of length <= max_len from ``start`` (brute force)."""
    traces: Set[Tuple[Hashable, ...]] = set()
    stack: List[Tuple[int, Tuple[Hashable, ...], int]] = [(start, (), 0)]
    # Track (state, trace) pairs to cut cycles while preserving all traces.
    seen: Set[Tuple[int, Tuple[Hashable, ...]]] = set()
    while stack:
        state, trace, length = stack.pop()
        if (state, trace) in seen:
            continue
        seen.add((state, trace))
        traces.add(trace)
        if length >= max_len:
            continue
        for aid, dst in lts.successors(state):
            if aid == TAU_ID:
                stack.append((dst, trace, length))
            else:
                label = lts.action_labels[aid]
                stack.append((dst, trace + (label,), length + 1))
    return traces


def is_trace_of(lts: LTS, trace: List[Hashable]) -> bool:
    """Whether ``trace`` is a trace of ``lts`` (subset simulation)."""
    current: Set[int] = _tau_close(lts, {lts.init})
    for label in trace:
        aid = lts.lookup_action(label)
        if aid is None:
            return False
        nxt: Set[int] = set()
        for state in current:
            for a, dst in lts.successors(state):
                if a == aid:
                    nxt.add(dst)
        if not nxt:
            return False
        current = _tau_close(lts, nxt)
    return True


def _tau_close(lts: LTS, states: Set[int]) -> Set[int]:
    out = set(states)
    stack = list(states)
    while stack:
        state = stack.pop()
        for aid, dst in lts.successors(state):
            if aid == TAU_ID and dst not in out:
                out.add(dst)
                stack.append(dst)
    return out


def naive_branching_bisimulation(lts: LTS) -> Set[Tuple[int, int]]:
    """Greatest branching bisimulation by naive fixpoint (Definition 4.1).

    Quadratic-ish and only usable on tiny systems; serves as the oracle
    for the partition-refinement implementation.
    """
    n = lts.num_states
    rel: Set[Tuple[int, int]] = {(s, r) for s in range(n) for r in range(n)}

    def tau_reach(state: int) -> List[int]:
        seen = [state]
        stack = [state]
        while stack:
            cur = stack.pop()
            for aid, dst in lts.successors(cur):
                if aid == TAU_ID and dst not in seen:
                    seen.append(dst)
                    stack.append(dst)
        return seen

    def simulates(s1: int, s2: int, rel: Set[Tuple[int, int]]) -> bool:
        for aid, t1 in lts.successors(s1):
            if aid == TAU_ID:
                if (t1, s2) in rel:
                    continue
                ok = False
                for mid in tau_reach(s2):
                    if (s1, mid) not in rel:
                        continue
                    for a2, t2 in lts.successors(mid):
                        if a2 == TAU_ID and (t1, t2) in rel:
                            ok = True
                            break
                    if ok:
                        break
                if not ok:
                    return False
            else:
                ok = False
                for mid in tau_reach(s2):
                    if (s1, mid) not in rel:
                        continue
                    for a2, t2 in lts.successors(mid):
                        if a2 == aid and (t1, t2) in rel:
                            ok = True
                            break
                    if ok:
                        break
                if not ok:
                    return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in list(rel):
            s, r = pair
            if not simulates(s, r, rel) or not simulates(r, s, rel):
                rel.discard(pair)
                rel.discard((r, s))
                changed = True
    return rel


def lts_strategy(
    max_states: int = 6,
    max_transitions: int = 12,
    labels: Tuple[str, ...] = ("tau", "a", "b"),
):
    """Hypothesis strategy for small random LTSs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_states))
        num_trans = draw(st.integers(min_value=0, max_value=max_transitions))
        transitions = []
        for _ in range(num_trans):
            src = draw(st.integers(min_value=0, max_value=n - 1))
            dst = draw(st.integers(min_value=0, max_value=n - 1))
            label = draw(st.sampled_from(labels))
            transitions.append((src, label, dst))
        init = draw(st.integers(min_value=0, max_value=n - 1))
        return make_lts(n, init, transitions)

    return build()


def naive_weak_bisimulation(lts: LTS) -> Set[Tuple[int, int]]:
    """Greatest weak bisimulation by naive fixpoint (Milner).

    Oracle for the saturation-based implementation on tiny systems.
    """
    n = lts.num_states

    def tau_reach(state: int) -> List[int]:
        seen = [state]
        stack = [state]
        while stack:
            cur = stack.pop()
            for aid, dst in lts.successors(cur):
                if aid == TAU_ID and dst not in seen:
                    seen.append(dst)
                    stack.append(dst)
        return seen

    # Saturated weak moves: state -> list of (aid_or_TAU, target).
    weak_moves: List[List[Tuple[int, int]]] = []
    for state in range(n):
        moves = []
        for mid in tau_reach(state):
            moves.append((TAU_ID, mid))
            for aid, dst in lts.successors(mid):
                if aid != TAU_ID:
                    for end in tau_reach(dst):
                        moves.append((aid, end))
        weak_moves.append(moves)

    rel: Set[Tuple[int, int]] = {(s, r) for s in range(n) for r in range(n)}

    def simulates(s1: int, s2: int) -> bool:
        for aid, t1 in lts.successors(s1):
            ok = False
            for aid2, t2 in weak_moves[s2]:
                if aid2 == aid and (t1, t2) in rel:
                    ok = True
                    break
            if not ok:
                return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in list(rel):
            s, r = pair
            if pair not in rel:
                continue
            if not simulates(s, r) or not simulates(r, s):
                rel.discard((s, r))
                rel.discard((r, s))
                changed = True
    return rel
