"""Shared helpers for the test suite: brute-force oracles and generators.

Since the differential-testing subsystem landed, the reference
implementations live in :mod:`repro.testing` (oracles, generators,
laws) where both the test suite and the ``repro fuzz`` harness share
them.  This module keeps the historical names as thin aliases so
existing tests keep reading naturally.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.core import LTS
from repro.testing import (
    bounded_traces,
    branching_bisimulation_relation,
    is_trace_of,
    lts_strategy,
    tau_heavy_lts_strategy,
    weak_bisimulation_relation,
)

__all__ = [
    "bounded_traces",
    "is_trace_of",
    "lts_strategy",
    "tau_heavy_lts_strategy",
    "naive_branching_bisimulation",
    "naive_weak_bisimulation",
]


def naive_branching_bisimulation(lts: LTS) -> Set[Tuple[int, int]]:
    """Greatest branching bisimulation by naive fixpoint (Definition 4.1)."""
    return branching_bisimulation_relation(lts)


def naive_weak_bisimulation(lts: LTS) -> Set[Tuple[int, int]]:
    """Greatest weak bisimulation by naive fixpoint (Milner)."""
    return weak_bisimulation_relation(lts)
