"""Tests for the metamorphic laws of the engine's algebra."""

from hypothesis import given

from repro.core import make_lts
from repro.testing import (
    ALL_LAWS,
    check_laws,
    lts_strategy,
    random_lts,
    tau_heavy_lts_strategy,
)


def test_laws_hold_on_classic_examples():
    examples = [
        make_lts(1, 0, []),
        make_lts(2, 0, [(0, "tau", 0)]),
        make_lts(5, 0, [(0, "tau", 1), (1, "a", 2), (3, "a", 4)]),
        make_lts(6, 0, [
            (0, "tau", 1), (0, "b", 2), (1, "a", 2),
            (3, "tau", 4), (3, "b", 5), (3, "a", 5), (4, "a", 5),
        ]),
    ]
    for lts in examples:
        assert check_laws(lts) == []


def test_laws_hold_on_seeded_random_systems():
    for seed in range(25):
        lts = random_lts(seed, num_states=5, num_transitions=9,
                         tau_cycles=seed % 2)
        assert check_laws(lts) == [], f"law violated on seed {seed}"


def test_all_laws_have_unique_names():
    names = [name for name, _ in ALL_LAWS]
    assert len(names) == len(set(names))


def test_each_law_passes_individually_on_a_tau_cycle_system():
    # tau-cycle-heavy shape stresses the divergence-sensitive laws.
    lts = make_lts(4, 0, [
        (0, "tau", 1), (1, "tau", 0), (1, "a", 2), (2, "tau", 3),
    ])
    for name, law in ALL_LAWS:
        assert law(lts) is None, name


@given(lts_strategy(max_states=5, max_transitions=8))
def test_laws_hold_on_drawn_systems(lts):
    assert check_laws(lts) == []


@given(tau_heavy_lts_strategy(max_states=4, max_transitions=7))
def test_laws_hold_on_tau_heavy_systems(lts):
    assert check_laws(lts) == []
