"""Tests for the differential fuzz harness itself.

Two things need proving: a correct engine produces *zero* disagreements
over a substantial seeded run (the acceptance bar for ``repro fuzz``),
and a deliberately broken engine is caught quickly by the same checks --
including the split-key mutation that only seeded refinement can see.
"""

import json
import os

import pytest

from repro.core import make_lts
from repro.testing import (
    MUTATIONS,
    check_equivalences,
    check_instance,
    check_seeded_refinement,
    check_trace_refinement,
    check_verdict_engines,
    parity_seed,
    run_fuzz,
    shrink_lts,
)
from repro.testing import differential


def test_check_instance_clean_on_classic_examples():
    examples = [
        make_lts(2, 0, [(0, "tau", 0)]),
        make_lts(6, 0, [
            (0, "tau", 1), (0, "b", 2), (1, "a", 2),
            (3, "tau", 4), (3, "b", 5), (3, "a", 5), (4, "a", 5),
        ]),
    ]
    for lts in examples:
        assert check_instance(lts) == []


def test_check_trace_refinement_clean_both_verdicts():
    impl = make_lts(3, 0, [(0, "a", 1), (0, "c", 2)])
    spec = make_lts(2, 0, [(0, "a", 1)])
    # holds direction and fails direction both cross-check cleanly
    assert check_trace_refinement(spec, impl) == []
    assert check_trace_refinement(impl, spec) == []


def test_parity_seed_and_seeded_check_clean():
    lts = make_lts(4, 0, [(0, "a", 1), (2, "a", 3)])
    assert parity_seed(lts) == [0, 1, 0, 1]
    assert check_seeded_refinement(lts) == []


def test_clean_fuzz_run_has_no_disagreements():
    report = run_fuzz(seed=0, n=60)
    # The three verdict-engine canaries run before the n requested
    # instances, so they show up in the instance count.
    assert report.instances + report.skipped == 60 + 3
    assert report.disagreements == []
    assert report.checks > 0
    assert "disagreements=0" in report.render()


@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_every_mutation_is_caught(mutation):
    report = run_fuzz(seed=0, n=100, mutate=mutation)
    assert report.disagreements, f"harness failed to catch {mutation}"
    # mutation runs stop at the first hit and never pollute the corpus
    assert all(case.path is None for case in report.cases)


def test_drop_block_id_is_caught_by_engine_parity():
    # The split-key mutation lives in the sweep engine's refine_step,
    # and from a trivial initial partition it is invisible even there
    # (equal signatures already imply equal blocks).  The default
    # engine is now the splitter queue, so the catch must come from the
    # sweep-vs-splitter parity check on a seeded variant.
    report = run_fuzz(seed=0, n=100, mutate="drop-block-id")
    assert report.disagreements
    assert {d.kind for d in report.disagreements} == {"engine"}
    assert all("seeded" in d.name for d in report.disagreements)


@pytest.mark.parametrize(
    "mutation",
    ["splitter-drop-smaller-half", "splitter-skip-dirty-preds"],
)
def test_splitter_mutations_are_caught_by_engine_parity(mutation):
    # Bugs injected into the splitter queue itself must be caught by
    # the parity check against the (unmutated) sweep oracle.
    report = run_fuzz(seed=0, n=100, mutate=mutation)
    assert report.disagreements
    assert "engine" in {d.kind for d in report.disagreements}


def test_check_verdict_engines_clean_on_canaries():
    # The canary programs are the deterministic fixtures the fuzz loop
    # runs first; a healthy engine pair must agree on both.
    from repro.lang import atomic_spec

    for name, program, workload in differential._canary_programs():
        disagreements = check_verdict_engines(
            program, atomic_spec(program), workload=workload
        )
        assert disagreements == [], (name, [d.render() for d in disagreements])


@pytest.mark.parametrize(
    "mutation",
    [
        "drop-monitor-transition",
        "skip-violation-state",
        "onthefly-skip-frontier-check",
    ],
)
def test_monitor_mutations_are_caught_by_canaries_alone(mutation):
    # n=0 requests no random instances, so any catch must come from the
    # canary programs -- each mutation has a canary built to trip it.
    report = run_fuzz(seed=0, n=0, mutate=mutation)
    assert report.disagreements, f"canaries failed to catch {mutation}"
    assert {d.kind for d in report.disagreements} == {"verdict"}


def test_verdict_disagreements_carry_replay_and_meta(tmp_path):
    # Inject the monitor mutation *around* a plain run so the corpus
    # writer path (mutate=None) is exercised for verdict cases too.
    corpus = tmp_path / "corpus"
    with MUTATIONS["skip-violation-state"]():
        report = run_fuzz(seed=0, n=0, corpus_dir=str(corpus), stop_after=1)
        assert report.disagreements
        found = report.disagreements[0]
        case = report.cases[0]
        # Shrinking preserved the failure: while the mutation is still
        # active the replay closure flags the shrunk instance.
        assert found.replay is not None and found.replay(case.lts)
    assert found.kind == "verdict"
    assert case.path is not None and os.path.exists(case.path)
    meta_path = case.path.replace(".aut", ".meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    assert meta["kind"] == "verdict"
    assert meta["program"] in ("canary_flag", "canary_blink")
    assert meta["workload"]


def test_unknown_mutation_rejected():
    with pytest.raises(ValueError):
        run_fuzz(seed=0, n=1, mutate="no-such-bug")


def test_mutation_contexts_restore_the_engine():
    lts = make_lts(3, 0, [(0, "tau", 1), (1, "a", 2)])
    for name, mutation in MUTATIONS.items():
        with mutation():
            pass
        assert check_equivalences(lts) == [], f"{name} leaked after exit"


def test_shrink_lts_reaches_a_local_minimum():
    lts = make_lts(4, 0, [
        (0, "a", 1), (1, "b", 2), (2, "c", 3), (0, "tau", 3),
    ])

    def still_fails(candidate):
        return any(
            candidate.action_labels[aid] == "b"
            for _, aid, _ in candidate.transitions()
        )

    shrunk = shrink_lts(lts, still_fails)
    assert still_fails(shrunk)
    assert shrunk.num_transitions == 1


def test_time_budget_cuts_the_run_short():
    report = run_fuzz(seed=0, n=100000, time_budget=0.2)
    assert report.instances < 100000
    assert report.elapsed >= 0.2


def test_fuzz_writes_shrunk_corpus_cases(tmp_path):
    # Force a "failure" with a mutation-free broken check by injecting
    # the divergence mutation manually around a plain run, so the
    # corpus writer path (mutate=None) is exercised.
    corpus = tmp_path / "corpus"
    with MUTATIONS["skip-divergence-mark"]():
        report = run_fuzz(
            seed=0, n=50, corpus_dir=str(corpus), stop_after=1
        )
    assert report.disagreements
    case = report.cases[0]
    assert case.path is not None and os.path.exists(case.path)
    meta_path = case.path.replace(".aut", ".meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    assert meta["schema"] == "repro.fuzz-case/v1"
    # The sweep-side mutation shows up as an engine-parity mismatch on
    # the divergence-sensitive variant (the default engine is the
    # splitter queue, which the mutation does not touch).
    assert meta["kind"] == "engine"
    assert meta["name"] == "branching-div"


def test_generate_instance_mix_is_deterministic():
    import random

    first = [
        differential._generate_instance(random.Random(1), i, 6, 0.35, True)
        for i in range(12)
    ]
    second = [
        differential._generate_instance(random.Random(1), i, 6, 0.35, True)
        for i in range(12)
    ]
    for (a, a_ctx), (b, b_ctx) in zip(first, second):
        assert (a is None) == (b is None)
        assert (a_ctx is None) == (b_ctx is None)
        if a is not None:
            assert a.num_states == b.num_states
            assert list(a.transitions()) == list(b.transitions())
        if a_ctx is not None:
            # same program seed and workload on both runs
            assert a_ctx[2] == b_ctx[2]
            assert a_ctx[1] == b_ctx[1]
