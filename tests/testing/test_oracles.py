"""Unit tests for the relational reference oracles.

The oracles are the trusted side of the differential harness, so they
get their own direct tests on the classic textbook systems whose
verdicts are known by hand, plus property tests tying them back to the
engine (the engine side of the same properties lives in
``tests/core/test_properties.py``).
"""

from hypothesis import given

from repro.core import branching_partition, make_lts, strong_partition, weak_partition
from repro.testing import (
    bounded_traces,
    branching_bisimulation_relation,
    divergence_sensitive_branching_relation,
    diverges_within,
    is_trace_of,
    lts_strategy,
    relation_agrees_with_partition,
    strong_bisimulation_relation,
    tau_cycle_states_naive,
    tau_reachable,
    weak_bisimulation_relation,
    weak_trace_inclusion,
)


def _classic_weak_not_branching():
    """van Glabbeek & Weijland's separating example, as one LTS.

    Left side (init 0) is ``tau.a + b``; right side (init 3) is
    ``tau.a + b + a``.  The two roots are weakly bisimilar (the extra
    ``a`` is matched through the silent step) but not branching
    bisimilar (after the matching silent step the intermediate state
    has lost the ``b`` option).
    """
    return make_lts(6, 0, [
        (0, "tau", 1), (0, "b", 2), (1, "a", 2),
        (3, "tau", 4), (3, "b", 5), (3, "a", 5), (4, "a", 5),
    ])


def test_weak_relates_the_classic_pair_branching_does_not():
    lts = _classic_weak_not_branching()
    weak = weak_bisimulation_relation(lts)
    branching = branching_bisimulation_relation(lts)
    assert (0, 3) in weak
    assert (0, 3) not in branching


def test_branching_relates_inert_tau_strong_does_not():
    # 0 --tau--> 1 --a--> 2   vs   3 --a--> 4: the silent prefix is inert.
    lts = make_lts(5, 0, [(0, "tau", 1), (1, "a", 2), (3, "a", 4)])
    assert (0, 3) in branching_bisimulation_relation(lts)
    assert (0, 3) not in strong_bisimulation_relation(lts)


def test_divergence_sensitivity_splits_spin_from_deadlock():
    # A silent self-loop vs. a deadlock: branching-equivalent, but only
    # one of them diverges.
    lts = make_lts(2, 0, [(0, "tau", 0)])
    assert (0, 1) in branching_bisimulation_relation(lts)
    assert (0, 1) not in divergence_sensitive_branching_relation(lts)


def test_divergence_oracle_keeps_equivalent_non_divergent_pair():
    # 0 <--tau--> 2 with a visible escape, and the tau-loop on 1 only:
    # 0 and 2 silently shuttle but cannot diverge inside their class
    # (their tau-moves to 1 leave it), so they stay equivalent.  This is
    # the regression instance for the naive (unsound, non-monotone)
    # divergence transfer the oracle used to have.
    lts = make_lts(3, 2, [
        (2, "c", 0), (2, "tau", 1), (1, "tau", 1), (0, "tau", 2),
    ])
    rel = divergence_sensitive_branching_relation(lts)
    assert (0, 2) in rel
    assert (0, 1) not in rel


def test_tau_cycle_states_naive():
    lts = make_lts(4, 0, [
        (0, "tau", 1), (1, "tau", 0), (2, "tau", 3), (3, "a", 2),
    ])
    assert tau_cycle_states_naive(lts) == {0, 1}


def test_diverges_within_respects_the_allowed_set():
    lts = make_lts(3, 0, [(0, "tau", 1), (1, "tau", 0), (2, "tau", 2)])
    assert diverges_within(lts, 0, {0, 1})
    assert not diverges_within(lts, 0, {0})      # the cycle needs state 1
    assert diverges_within(lts, 2, {2})
    assert not diverges_within(lts, 2, {0, 1})   # start outside allowed


def test_tau_reachable_is_reflexive_and_silent_only():
    lts = make_lts(4, 0, [(0, "tau", 1), (1, "a", 2), (1, "tau", 3)])
    assert set(tau_reachable(lts, 0)) == {0, 1, 3}
    assert set(tau_reachable(lts, 2)) == {2}


def test_bounded_traces_ignores_tau_and_caps_length():
    lts = make_lts(4, 0, [(0, "tau", 1), (1, "a", 2), (2, "b", 3)])
    assert bounded_traces(lts, 0, 1) == {(), ("a",)}
    assert bounded_traces(lts, 0, 2) == {(), ("a",), ("a", "b")}


def test_is_trace_of():
    lts = make_lts(4, 0, [(0, "tau", 1), (1, "a", 2), (2, "b", 3)])
    assert is_trace_of(lts, [])
    assert is_trace_of(lts, ["a"])
    assert is_trace_of(lts, ["a", "b"])
    assert not is_trace_of(lts, ["b"])
    assert not is_trace_of(lts, ["a", "a"])
    assert not is_trace_of(lts, ["unknown"])


def test_weak_trace_inclusion_verdicts_and_counterexample():
    impl = make_lts(3, 0, [(0, "a", 1), (1, "b", 2), (0, "c", 2)])
    spec = make_lts(3, 0, [(0, "a", 1), (1, "b", 2)])
    holds, counterexample = weak_trace_inclusion(spec, impl)
    assert holds and counterexample is None
    holds, counterexample = weak_trace_inclusion(impl, spec)
    assert not holds
    assert counterexample == ["c"]
    assert is_trace_of(impl, counterexample)
    assert not is_trace_of(spec, counterexample)


def test_seeded_oracle_restricts_to_the_seed():
    # Two bisimilar deadlock states forced apart by the seed partition.
    lts = make_lts(2, 0, [])
    assert (0, 1) in strong_bisimulation_relation(lts)
    assert (0, 1) not in strong_bisimulation_relation(lts, initial=[0, 1])
    assert (0, 0) in strong_bisimulation_relation(lts, initial=[0, 1])


def test_relation_agrees_with_partition():
    relation = {(0, 0), (1, 1), (2, 2), (0, 1), (1, 0)}
    assert relation_agrees_with_partition(relation, [0, 0, 1]) is None
    mismatch = relation_agrees_with_partition(relation, [0, 1, 2])
    assert mismatch == (0, 1)


@given(lts_strategy(max_states=5, max_transitions=8))
def test_oracles_agree_with_engine_partitions(lts):
    for relation_fn, partition_fn in (
        (strong_bisimulation_relation, strong_partition),
        (branching_bisimulation_relation, branching_partition),
        (weak_bisimulation_relation, weak_partition),
        (
            divergence_sensitive_branching_relation,
            lambda l: branching_partition(l, divergence=True),
        ),
    ):
        mismatch = relation_agrees_with_partition(
            relation_fn(lts), partition_fn(lts)
        )
        assert mismatch is None


@given(lts_strategy(max_states=5, max_transitions=8))
def test_oracle_relations_are_equivalences(lts):
    n = lts.num_states
    for relation_fn in (
        strong_bisimulation_relation,
        branching_bisimulation_relation,
        weak_bisimulation_relation,
        divergence_sensitive_branching_relation,
    ):
        rel = relation_fn(lts)
        for s in range(n):
            assert (s, s) in rel
        assert all((t, s) in rel for s, t in rel)
        assert all(
            (s, u) in rel
            for s, t in rel
            for t2, u in rel
            if t2 == t
        )
