"""Tests for the seeded random LTS / program generators."""

import pytest
from hypothesis import given

from repro.lang.client import StateExplosion
from repro.testing import (
    LtsShape,
    ProgramShape,
    explore_random_program,
    lts_strategy,
    random_lts,
    random_program,
    tau_cycle_states_naive,
    tau_heavy_lts_strategy,
)


def _transition_set(lts):
    return {
        (src, lts.action_labels[aid], dst)
        for src, aid, dst in lts.transitions()
    }


def test_random_lts_is_seed_deterministic():
    a = random_lts(42)
    b = random_lts(42)
    assert a.num_states == b.num_states
    assert a.init == b.init
    assert _transition_set(a) == _transition_set(b)
    different = random_lts(43)
    assert (
        _transition_set(a) != _transition_set(different)
        or a.init != different.init
    )


def test_random_lts_respects_shape_bounds():
    shape = LtsShape(num_states=4, num_transitions=6, num_labels=1)
    for seed in range(20):
        lts = random_lts(seed, shape)
        assert lts.num_states == 4
        assert 0 <= lts.init < 4
        assert lts.num_transitions <= 6
        visible = {
            lts.action_labels[aid]
            for _, aid, _ in lts.transitions()
            if lts.action_labels[aid] != ("tau",)
        }
        assert visible <= {"a"}


def test_random_lts_overrides_and_unknown_field_rejected():
    lts = random_lts(7, num_states=3, tau_density=1.0, num_transitions=5)
    assert lts.num_states == 3
    assert all(
        lts.action_labels[aid] == ("tau",) for _, aid, _ in lts.transitions()
    )
    with pytest.raises(TypeError):
        random_lts(7, no_such_knob=1)


def test_random_lts_tau_cycle_injection():
    hits = 0
    for seed in range(10):
        lts = random_lts(seed, num_states=5, num_transitions=0, tau_cycles=1)
        if tau_cycle_states_naive(lts):
            hits += 1
    # Every injected cycle is a real silent cycle.
    assert hits == 10


def test_random_lts_deterministic_mode():
    for seed in range(10):
        lts = random_lts(seed, num_states=5, num_transitions=20,
                         deterministic=True)
        seen = set()
        for src, aid, _ in lts.transitions():
            assert (src, aid) not in seen
            seen.add((src, aid))


def test_random_program_is_seed_deterministic():
    prog_a, workload_a = random_program(3)
    prog_b, workload_b = random_program(3)
    assert workload_a == workload_b
    assert [m.name for m in prog_a.methods] == [m.name for m in prog_b.methods]
    assert [len(m.body) for m in prog_a.methods] == [
        len(m.body) for m in prog_b.methods
    ]
    lts_a = explore_random_program(3)
    lts_b = explore_random_program(3)
    assert lts_a.num_states == lts_b.num_states
    assert _transition_set(lts_a) == _transition_set(lts_b)


def test_random_program_shape_is_respected():
    shape = ProgramShape(num_methods=3, max_body_ops=2, num_globals=1)
    program, workload = random_program(11, shape)
    assert len(program.methods) == 3
    assert len(workload) == 3
    assert set(program.globals_) == {"g0"}
    for method in program.methods:
        # body ops plus the trailing Return
        assert len(method.body) <= shape.max_body_ops + 1


def test_explore_random_program_produces_call_ret_structure():
    lts = explore_random_program(5)
    assert lts.num_states > 1
    kinds = {
        label[0]
        for label in lts.action_labels
        if isinstance(label, tuple) and label != ("tau",)
    }
    assert "call" in kinds and "ret" in kinds


def test_explore_random_program_state_cap_raises():
    with pytest.raises(StateExplosion):
        explore_random_program(5, max_states=1)


@given(lts_strategy(max_states=4, max_transitions=6))
def test_lts_strategy_draws_are_well_formed(lts):
    assert 1 <= lts.num_states <= 4
    assert 0 <= lts.init < lts.num_states
    assert lts.num_transitions <= 6
    for src, aid, dst in lts.transitions():
        assert 0 <= src < lts.num_states
        assert 0 <= dst < lts.num_states
        assert lts.action_labels[aid] in (("tau",), "a", "b")


@given(tau_heavy_lts_strategy(max_states=4, max_transitions=6))
def test_tau_heavy_strategy_draws_are_well_formed(lts):
    assert 1 <= lts.num_states
    for src, aid, dst in lts.transitions():
        assert lts.action_labels[aid] in (("tau",), "a")
