"""Validity of LTL counterexample lassos against the source system.

Every reported violation is a lasso ``prefix + cycle``; these tests
replay it on the stutter-completed system (the structure the checker
actually explored), pump the cycle several times to prove it really
loops, and check formula-specific content (a ``G F a`` violation must
have an ``a``-free cycle, a ``F b`` violation must avoid ``b``
entirely).
"""

from hypothesis import given

from repro.core import make_lts
from repro.ltl import AP, Finally, Globally, check_ltl, stutter_complete
from repro.testing import lts_strategy

a = AP("a", lambda label: label == "a")
b = AP("b", lambda label: label == "b")


def _replayable(system, word):
    """Whether ``word`` labels a path from the initial state."""
    states = {system.init}
    for label in word:
        aid = system.lookup_action(label)
        if aid is None:
            return False
        states = {
            dst
            for state in states
            for aid2, dst in system.successors(state)
            if aid2 == aid
        }
        if not states:
            return False
    return True


def _assert_valid_lasso(lts, result):
    prefix = list(result.prefix or [])
    cycle = list(result.cycle or [])
    assert cycle, "a violation lasso needs a non-empty cycle"
    system = stutter_complete(lts)
    assert _replayable(system, prefix + cycle)
    # The cycle must actually loop: pumping it stays replayable.
    assert _replayable(system, prefix + cycle * 3)


@given(lts_strategy(max_states=5, max_transitions=8, labels=("tau", "a", "b")))
def test_gfa_counterexamples_replay_and_avoid_a(lts):
    result = check_ltl(lts, Globally(Finally(a)))
    if result.holds:
        return
    _assert_valid_lasso(lts, result)
    # A G F a violation visits 'a' only finitely often: never in the cycle.
    assert "a" not in (result.cycle or [])


@given(lts_strategy(max_states=5, max_transitions=8, labels=("tau", "a", "b")))
def test_finally_counterexamples_never_contain_the_goal(lts):
    result = check_ltl(lts, Finally(b))
    if result.holds:
        return
    _assert_valid_lasso(lts, result)
    # An F b violation is a whole run without b: neither part has it.
    word = list(result.prefix or []) + list(result.cycle or [])
    assert "b" not in word


@given(lts_strategy(max_states=5, max_transitions=8, labels=("tau", "a", "b")))
def test_globally_counterexamples_reach_a_violation(lts):
    result = check_ltl(lts, Globally(a))
    if result.holds:
        return
    _assert_valid_lasso(lts, result)
    # A G a violation must contain some non-'a' letter along the lasso.
    word = list(result.prefix or []) + list(result.cycle or [])
    assert any(label != "a" for label in word)


def test_lasso_validity_on_handcrafted_starvation():
    lts = make_lts(3, 0, [
        (0, "a", 1), (1, "a", 0), (0, "b", 2), (2, "b", 2),
    ])
    result = check_ltl(lts, Globally(Finally(a)))
    assert not result.holds
    _assert_valid_lasso(lts, result)
    assert set(result.cycle) == {"b"}
