"""LTL model checking tests: Büchi construction + nested DFS + progress."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import make_lts
from repro.ltl import (
    AP,
    And,
    Finally,
    Globally,
    Implies,
    Not,
    Or,
    Release,
    Until,
    check_ltl,
    check_lock_freedom_ltl,
    ltl_to_buchi,
    stutter_complete,
)
from repro.ltl.product import DEADLOCK
from tests.helpers import lts_strategy

a = AP("a", lambda l: l == "a")
b = AP("b", lambda l: l == "b")
tau = AP("tau", lambda l: l == ("tau",))
dead = AP("dead", lambda l: l == DEADLOCK)


def test_globally_on_selfloop():
    lts = make_lts(1, 0, [(0, "a", 0)])
    assert check_ltl(lts, Globally(a)).holds
    assert not check_ltl(lts, Globally(b)).holds


def test_finally_must_hold_on_all_paths():
    # Branch: one path reaches b, the other loops on a forever.
    lts = make_lts(3, 0, [(0, "a", 0), (0, "b", 1), (1, "a", 1)])
    assert not check_ltl(lts, Finally(b)).holds
    # Remove the escape loop on a at state 0: force b.
    forced = make_lts(2, 0, [(0, "b", 1), (1, "a", 1)])
    assert check_ltl(forced, Finally(b)).holds


def test_until():
    lts = make_lts(3, 0, [(0, "a", 1), (1, "a", 2), (2, "b", 2)])
    assert check_ltl(lts, Until(a, b)).holds
    swapped = make_lts(3, 0, [(0, "b", 1), (1, "a", 1)])
    assert not check_ltl(swapped, Until(a, b)).holds or True
    # a U b requires b eventually with a before: first letter b satisfies it.
    assert check_ltl(swapped, Until(a, b)).holds


def test_release():
    # b R a: a must hold up to and including the step where b holds...
    # action-based: letters satisfy a forever (b never required).
    lts = make_lts(1, 0, [(0, "a", 0)])
    assert check_ltl(lts, Release(b, a)).holds
    broken = make_lts(2, 0, [(0, "a", 1), (1, "b", 1)])
    assert not check_ltl(broken, Release(b, a)).holds


def test_response_property():
    lts = make_lts(2, 0, [(0, "a", 1), (1, "b", 0)])
    assert check_ltl(lts, Globally(Implies(a, Finally(b)))).holds
    starved = make_lts(2, 0, [(0, "a", 1), (1, "a", 1)])
    result = check_ltl(starved, Globally(Implies(a, Finally(b))))
    assert not result.holds
    assert result.cycle is not None
    assert "b" not in result.cycle


def test_deadlock_stuttering():
    lts = make_lts(2, 0, [(0, "a", 1)])
    # Terminal state stutters forever: F dead holds, G F a fails.
    assert check_ltl(lts, Finally(dead)).holds
    assert not check_ltl(lts, Globally(Finally(a))).holds
    assert check_ltl(lts, Finally(a)).holds


def test_counterexample_is_replayable():
    lts = make_lts(3, 0, [(0, "a", 1), (1, "a", 0), (0, "b", 2), (2, "b", 2)])
    result = check_ltl(lts, Globally(Finally(a)))
    assert not result.holds
    word = (result.prefix or []) + (result.cycle or [])
    # Replay on the stutter-completed system.
    system = stutter_complete(lts)
    states = {system.init}
    for label in word:
        aid = system.lookup_action(label)
        assert aid is not None
        states = {d for s in states for a2, d in system.successors(s) if a2 == aid}
        assert states, f"counterexample not replayable at {label!r}"
    assert all(label == "b" for label in result.cycle)


def test_boolean_combinations():
    lts = make_lts(2, 0, [(0, "a", 1), (1, "b", 0)])
    assert check_ltl(lts, Or(Globally(a), Globally(Finally(b)))).holds
    assert not check_ltl(lts, And(Finally(a), Globally(a))).holds
    assert check_ltl(lts, Not(Globally(a))).holds


def test_buchi_construction_is_finite_and_nonempty():
    automaton = ltl_to_buchi(Globally(Finally(a)))
    assert automaton.num_states > 0
    assert automaton.accepting


def test_lock_freedom_ltl_examples():
    spin = make_lts(2, 0, [(0, ("call", 1, "m", ()), 1), (1, "tau", 1)])
    result = check_lock_freedom_ltl(spin)
    assert not result.holds
    fine = make_lts(3, 0, [
        (0, ("call", 1, "m", ()), 1), (1, "tau", 2), (2, ("ret", 1, "m", 0), 0),
    ])
    assert check_lock_freedom_ltl(fine).holds


COMMON = settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@COMMON
@given(lts_strategy(labels=("tau", "a")))
def test_gfa_agrees_with_graph_oracle(lts):
    # G F a fails iff a reachable cycle uses no 'a' edge (incl. deadlock
    # stuttering, which is an a-free self-loop).
    result = check_ltl(lts, Globally(Finally(a)))
    system = stutter_complete(lts)
    # Oracle: search a reachable cycle avoiding 'a'.
    a_id = system.lookup_action("a")
    reachable = system.reachable_states()
    adj = {s: [d for aid, d in system.successors(s) if aid != a_id]
           for s in reachable}
    # cycle detection restricted to reachable non-a subgraph
    import itertools
    color = {}
    def has_cycle(start):
        stack = [(start, iter(adj.get(start, ())))]
        color[start] = 1
        while stack:
            node, it = stack[-1]
            for nxt in it:
                if nxt not in reachable:
                    continue
                state = color.get(nxt, 0)
                if state == 1:
                    return True
                if state == 0:
                    color[nxt] = 1
                    stack.append((nxt, iter(adj.get(nxt, ()))))
                    break
            else:
                color[node] = 2
                stack.pop()
        return False
    oracle_violation = any(
        has_cycle(s) for s in reachable if color.get(s, 0) == 0
    )
    assert result.holds == (not oracle_violation)


def test_thread_response_formula():
    from repro.ltl.progress import thread_response_formula
    # t1 calls then returns, forever: response holds for t1.
    good = make_lts(2, 0, [
        (0, ("call", 1, "m", ()), 1), (1, ("ret", 1, "m", 0), 0),
    ])
    assert check_ltl(good, thread_response_formula(1)).holds
    # t1 calls, then only t2 makes progress forever: t1 starves.
    starved = make_lts(3, 0, [
        (0, ("call", 1, "m", ()), 1),
        (1, ("call", 2, "m", ()), 2),
        (2, ("ret", 2, "m", 0), 1),
    ])
    assert not check_ltl(starved, thread_response_formula(1)).holds
    assert check_ltl(starved, thread_response_formula(2)).holds


def test_thread_response_method_filter():
    from repro.ltl.progress import thread_response_formula
    lts = make_lts(3, 0, [
        (0, ("call", 1, "push", (1,)), 1),
        (1, ("ret", 1, "push", None), 2),
        (2, ("call", 1, "pop", ()), 2),   # pop called forever, never returns
    ])
    assert check_ltl(lts, thread_response_formula(1, "push")).holds
    assert not check_ltl(lts, thread_response_formula(1, "pop")).holds


def test_lock_freedom_formula_rendering():
    from repro.ltl import render
    from repro.ltl.progress import lock_freedom_formula
    text = render(lock_freedom_formula())
    assert "ret" in text and "deadlock" in text


def test_check_ltl_honours_run_budget():
    from repro.util.budget import BudgetExhausted, RunBudget

    lts = make_lts(2, 0, [(0, "a", 1), (1, "b", 0)])
    with pytest.raises(BudgetExhausted) as exc:
        check_ltl(lts, Globally(Finally(a)),
                  budget=RunBudget(deadline_seconds=0.0))
    assert exc.value.reason == "deadline"
    assert exc.value.phase == "ltl"
    # Without a budget the same check completes.
    assert check_ltl(lts, Globally(Finally(a))).holds


def test_check_lock_freedom_ltl_honours_run_budget():
    from repro.util.budget import BudgetExhausted, RunBudget

    lts = make_lts(2, 0, [
        (0, ("call", 1, "m", ()), 1), (1, ("ret", 1, "m", 0), 0),
    ])
    with pytest.raises(BudgetExhausted):
        check_lock_freedom_ltl(lts, budget=RunBudget(deadline_seconds=0.0))
    assert check_lock_freedom_ltl(lts).holds
