"""LTL syntax, NNF and parser tests."""

import pytest

from repro.ltl import (
    AP,
    FALSE,
    TRUE,
    And,
    Finally,
    Globally,
    Implies,
    Not,
    Or,
    Release,
    Until,
    negation_normal_form,
    parse,
    render,
)

a = AP("a", lambda l: l == "a")
b = AP("b", lambda l: l == "b")
PROPS = {"a": a, "b": b}


def test_ap_identity_by_name():
    assert AP("a", lambda l: True) == AP("a", lambda l: False)
    assert hash(AP("a", None)) == hash(AP("a", lambda l: False))
    assert AP("a", None) != AP("b", None)


def test_nnf_double_negation():
    assert negation_normal_form(Not(Not(a))) == a


def test_nnf_de_morgan():
    assert negation_normal_form(Not(And(a, b))) == Or(Not(a), Not(b))
    assert negation_normal_form(Not(Or(a, b))) == And(Not(a), Not(b))


def test_nnf_temporal_duals():
    assert negation_normal_form(Not(Until(a, b))) == Release(Not(a), Not(b))
    assert negation_normal_form(Not(Release(a, b))) == Until(Not(a), Not(b))


def test_nnf_globally_finally():
    # G a == false R a ; !G a == true U !a
    assert negation_normal_form(Not(Globally(a))) == Until(TRUE, Not(a))
    assert negation_normal_form(Not(Finally(a))) == Release(FALSE, Not(a))


def test_nnf_constants():
    assert negation_normal_form(Not(TRUE)) == FALSE
    assert negation_normal_form(Not(FALSE)) == TRUE


def test_derived_operators():
    assert Finally(a) == Until(TRUE, a)
    assert Globally(a) == Release(FALSE, a)
    assert Implies(a, b) == Or(Not(a), b)


def test_parse_simple():
    assert parse("a", PROPS) == a
    assert parse("!a", PROPS) == Not(a)
    assert parse("a & b", PROPS) == And(a, b)
    assert parse("a | b", PROPS) == Or(a, b)
    assert parse("a U b", PROPS) == Until(a, b)
    assert parse("G a", PROPS) == Globally(a)
    assert parse("F b", PROPS) == Finally(b)
    assert parse("true", PROPS) == TRUE


def test_parse_precedence_and_parens():
    # -> is loosest; & binds tighter than |.
    assert parse("a -> F b", PROPS) == Implies(a, Finally(b))
    assert parse("a | a & b", PROPS) == Or(a, And(a, b))
    assert parse("(a | a) & b", PROPS) == And(Or(a, a), b)
    assert parse("G (a -> F b)", PROPS) == Globally(Implies(a, Finally(b)))


def test_parse_errors():
    with pytest.raises(ValueError):
        parse("c", PROPS)
    with pytest.raises(ValueError):
        parse("(a", PROPS)
    with pytest.raises(ValueError):
        parse("a b", PROPS)
    with pytest.raises(ValueError):
        parse("a @ b", PROPS)


def test_render_round_trip_structure():
    phi = Globally(Implies(a, Finally(b)))
    text = render(phi)
    assert "a" in text and "b" in text and "U" in text
