"""Result cache: crash-safety, quarantine, LRU, restart persistence.

Every failure mode here is one the daemon must survive without human
intervention: torn index appends truncate back to the valid prefix,
corrupt entries quarantine and read as misses, and recency survives a
restart so eviction decisions stay sane.
"""

import os

import pytest

from repro.service.cache import ResultCache


def _result(tag):
    return {"schema": "repro.service-result/v1", "verdict": "TRUE",
            "tag": tag}


def _key(n):
    return f"{n:064x}"  # sha256-shaped


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------

def test_put_get_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get(_key(1)) is None
    cache.put(_key(1), _result("a"))
    assert cache.get(_key(1)) == _result("a")
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert cache.stats()["puts"] == 1
    assert cache.stats()["entries"] == 1


def test_put_overwrites(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("old"))
    cache.put(_key(1), _result("new"))
    assert cache.get(_key(1)) == _result("new")
    assert len(cache) == 1


def test_entries_survive_restart(tmp_path):
    ResultCache(str(tmp_path)).put(_key(1), _result("a"))
    reopened = ResultCache(str(tmp_path))
    assert reopened.get(_key(1)) == _result("a")


def test_atomic_writes_leave_no_droppings(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("a"))
    names = sorted(os.listdir(cache.entries_dir))
    assert names == [f"{_key(1)}.res"]


# ----------------------------------------------------------------------
# LRU
# ----------------------------------------------------------------------

def test_lru_eviction_removes_oldest_entry_and_file(tmp_path):
    cache = ResultCache(str(tmp_path), max_entries=2)
    for n in (1, 2, 3):
        cache.put(_key(n), _result(str(n)))
    assert len(cache) == 2
    assert _key(1) not in cache
    assert cache.stats()["evictions"] == 1
    assert not os.path.exists(os.path.join(
        cache.entries_dir, f"{_key(1)}.res"))
    assert cache.get(_key(3)) == _result("3")


def test_hits_refresh_recency_across_restarts(tmp_path):
    cache = ResultCache(str(tmp_path), max_entries=2)
    cache.put(_key(1), _result("1"))
    cache.put(_key(2), _result("2"))
    assert cache.get(_key(1)) is not None  # 1 is now the most recent

    # The touch record persisted: after a restart, inserting a third
    # entry evicts 2, not the recently-used 1.
    reopened = ResultCache(str(tmp_path), max_entries=2)
    reopened.put(_key(3), _result("3"))
    assert _key(1) in reopened
    assert _key(2) not in reopened


# ----------------------------------------------------------------------
# corruption
# ----------------------------------------------------------------------

def test_corrupt_entry_quarantined_and_recomputable(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("a"))
    path = os.path.join(cache.entries_dir, f"{_key(1)}.res")
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0xFF  # flip one payload byte: CRC must catch it
    with open(path, "wb") as handle:
        handle.write(data)

    assert cache.get(_key(1)) is None  # miss, not a crash
    assert cache.counters["corrupt_entries"] == 1
    assert _key(1) not in cache
    # Evidence moved aside, never deleted.
    assert os.listdir(cache.quarantine_dir) == [f"{_key(1)}.res"]
    # The recomputed result stores and serves cleanly.
    cache.put(_key(1), _result("recomputed"))
    assert cache.get(_key(1)) == _result("recomputed")


def test_truncated_entry_is_corruption_too(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("a"))
    path = os.path.join(cache.entries_dir, f"{_key(1)}.res")
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(data[:len(data) // 2])
    assert cache.get(_key(1)) is None
    assert cache.counters["corrupt_entries"] == 1


def test_torn_index_tail_truncated_on_load(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("a"))
    cache.put(_key(2), _result("b"))
    with open(cache.index_path, "ab") as handle:
        handle.write(b"RPX1\x00\x00")  # a torn append: header cut short

    reopened = ResultCache(str(tmp_path))
    assert reopened.counters["torn_index_tails"] == 1
    # The records before the tear survive...
    assert reopened.get(_key(1)) == _result("a")
    assert reopened.get(_key(2)) == _result("b")
    # ...and the tail was truncated away: the next load is clean.
    third = ResultCache(str(tmp_path))
    assert third.counters["torn_index_tails"] == 0


def test_garbage_index_tail_truncated_on_load(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("a"))
    with open(cache.index_path, "ab") as handle:
        handle.write(b"this is not a frame at all")
    reopened = ResultCache(str(tmp_path))
    assert reopened.counters["torn_index_tails"] == 1
    assert reopened.get(_key(1)) == _result("a")


def test_index_record_without_entry_file_is_dropped(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_key(1), _result("a"))
    os.remove(os.path.join(cache.entries_dir, f"{_key(1)}.res"))
    reopened = ResultCache(str(tmp_path))
    assert _key(1) not in reopened
    assert reopened.get(_key(1)) is None


# ----------------------------------------------------------------------
# log compaction
# ----------------------------------------------------------------------

def test_mostly_dead_log_compacts_atomically(tmp_path):
    cache = ResultCache(str(tmp_path))
    for round_ in range(70):  # 70 put records for one live key
        cache.put(_key(1), _result(str(round_)))
    big = os.path.getsize(cache.index_path)

    reopened = ResultCache(str(tmp_path))  # load triggers compaction
    assert os.path.getsize(reopened.index_path) < big
    assert reopened.get(_key(1)) == _result("69")
    # The compacted log round-trips.
    third = ResultCache(str(tmp_path))
    assert third.get(_key(1)) == _result("69")


def test_rejects_silly_capacity(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(str(tmp_path), max_entries=0)
