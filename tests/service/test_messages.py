"""Request normalization and cache-key identity.

The cache key is the service's correctness linchpin: two requests map
to one key iff they are *the same job* -- so resource caps and
verdict-preserving performance toggles must be excluded, and anything
that can change the verdict must be included.
"""

import pytest

from repro.service.messages import (
    build_request,
    cache_key,
    request_cache_key,
    service_fingerprint,
)


def _request(**overrides):
    base = dict(kind="lin", key="treiber")
    base.update(overrides)
    return build_request(**base)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="kind"):
        build_request(kind="frobnicate", key="treiber")


def test_unknown_object_rejected():
    with pytest.raises(ValueError, match="benchmark object"):
        build_request(kind="lin", key="no_such_object")


@pytest.mark.parametrize("field", ["threads", "ops", "values"])
def test_nonpositive_bounds_rejected(field):
    with pytest.raises(ValueError):
        _request(**{field: 0})


def test_method_defaults_per_kind():
    assert _request()["method"] == "quotient"
    assert _request(kind="lockfree")["method"] == "union"
    assert _request(kind="explore")["method"] is None


def test_bad_method_for_kind_rejected():
    with pytest.raises(ValueError, match="lin method"):
        _request(method="union")
    with pytest.raises(ValueError, match="lockfree method"):
        _request(kind="lockfree", method="quotient")


# ----------------------------------------------------------------------
# cache-key identity
# ----------------------------------------------------------------------

def test_cache_key_is_deterministic():
    request = _request()
    assert request_cache_key(request) == request_cache_key(request)
    assert len(request_cache_key(request)) == 64  # sha256 hex


def test_cache_key_ignores_resource_caps_and_perf_toggles():
    base = request_cache_key(_request())
    # None of these can change a *decided* verdict, so none may change
    # the key: max_states / deadline are caps, reduce / engine are
    # proven verdict-preserving.
    assert request_cache_key(_request(max_states=5000)) == base
    assert request_cache_key(_request(deadline=1.5)) == base
    assert request_cache_key(_request(reduce=False)) == base
    assert request_cache_key(_request(engine="baseline")) == base


@pytest.mark.parametrize("override", [
    {"kind": "lockfree"},
    {"key": "ms_queue"},
    {"threads": 3},
    {"ops": 3},
    {"values": 3},
    {"method": "reachability"},
])
def test_cache_key_separates_distinct_jobs(override):
    assert request_cache_key(_request(**override)) != \
        request_cache_key(_request())


def test_fingerprint_carries_schema_and_property():
    fp = service_fingerprint(_request())
    assert fp["schema"] == "repro.service-fingerprint/v1"
    assert fp["kind"] == "lin"
    assert fp["method"] == "quotient"
    assert "impl" in fp
    # cache_key is pure over the fingerprint dict
    assert cache_key(fp) == cache_key(dict(fp))
