"""Daemon behavior: caching, dedup, backpressure, disconnects, resume.

All tests run an in-process daemon on a Unix socket under ``tmp_path``
(the ``start()`` test path); the CLI/process-level equivalent lives in
``scripts/service_smoke.py`` and the CI service-smoke job.
"""

import os
import threading
import time

import pytest

from repro.service import (
    DaemonConfig,
    ServiceClient,
    SubmissionRejected,
    VerificationDaemon,
    request_cache_key,
)
from repro.service.messages import build_request
from repro.util.budget import EXIT_INTERRUPTED, REASON_INTERRUPTED


def _config(tmp_path, name="svc", **overrides):
    defaults = dict(
        socket=str(tmp_path / f"{name}.sock"),
        state_dir=str(tmp_path / f"{name}-state"),
        heartbeat_seconds=0.1,
        # Small but nonzero: 0.0 would snapshot on every expansion.
        # Exhaustion always salvage-saves regardless of the interval.
        checkpoint_seconds=0.1,
    )
    defaults.update(overrides)
    return DaemonConfig(**defaults)


def _start(config):
    daemon = VerificationDaemon(config)
    endpoint = daemon.start()
    return daemon, endpoint


def _stop(daemon):
    daemon.shutdown()
    daemon.join(timeout=30.0)


def _wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _request(**overrides):
    base = dict(kind="lin", key="newcas")
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# basic service
# ----------------------------------------------------------------------

def test_ping_and_status(tmp_path):
    daemon, endpoint = _start(_config(tmp_path))
    try:
        with ServiceClient.connect(endpoint) as client:
            assert client.ping()
            status = client.status()
            assert status["schema"] == "repro.service-status/v1"
            assert status["capacity"] == 8
            assert status["jobs"] == {}
            assert "cache" in status
    finally:
        _stop(daemon)


def test_lin_job_verdict_and_second_submission_served_from_cache(tmp_path):
    daemon, endpoint = _start(_config(tmp_path))
    try:
        with ServiceClient.connect(endpoint) as client:
            first = client.submit_and_wait(_request())
        assert first["verdict"] == "TRUE"
        assert first["exit_code"] == 0
        assert first["cached"] is False
        assert first["counterexample"] is None

        with ServiceClient.connect(endpoint) as client:
            second = client.submit_and_wait(_request())
        assert second["cached"] is True
        # Cache identity strips the verdict-preserving knobs: a request
        # differing only in resource caps hits the same entry.
        with ServiceClient.connect(endpoint) as client:
            third = client.submit_and_wait(_request(max_states=99999))
        assert third["cached"] is True

        assert daemon.counters["jobs_run"] == 1
        assert daemon.counters["cache_served"] == 2
        assert daemon.cache.stats()["hits"] == 2
        for key in ("verdict", "exit_code", "kind", "key", "method"):
            assert second[key] == first[key]
    finally:
        _stop(daemon)


def test_explore_and_lockfree_kinds(tmp_path):
    from repro.lang import explore
    from repro.objects import get
    from repro.service.messages import request_program_config

    daemon, endpoint = _start(_config(tmp_path))
    try:
        with ServiceClient.connect(endpoint) as client:
            explored = client.submit_and_wait(_request(kind="explore"))
            lockfree = client.submit_and_wait(_request(kind="lockfree"))
        _bench, program, config = request_program_config(
            build_request(kind="explore", key="newcas"))
        direct = explore(program, config)
        assert explored["impl_states"] == direct.num_states
        assert explored["impl_transitions"] == direct.num_transitions
        assert explored["exit_code"] == 0

        assert get("newcas").expect_lock_free is True
        assert lockfree["verdict"] == "TRUE"
        assert lockfree["exit_code"] == 0
        assert lockfree["diagnostic"] is None
    finally:
        _stop(daemon)


def test_lin_method_both_reports_both_engines(tmp_path):
    daemon, endpoint = _start(_config(tmp_path))
    try:
        with ServiceClient.connect(endpoint) as client:
            result = client.submit_and_wait(_request(method="both"))
        assert result["verdict"] == "TRUE"
        assert result["disagree"] is False
        assert result["quotient"]["verdict"] == "TRUE"
        assert result["reachability"]["verdict"] == "TRUE"
        assert result["quotient"]["engine"] == "quotient"
        assert result["reachability"]["engine"] == "reachability"
    finally:
        _stop(daemon)


def test_malformed_submissions_rejected_without_harm(tmp_path):
    daemon, endpoint = _start(_config(tmp_path))
    try:
        with ServiceClient.connect(endpoint) as client:
            with pytest.raises(SubmissionRejected, match="kind"):
                client.submit(_request(kind="frobnicate"))
            with pytest.raises(SubmissionRejected, match="benchmark"):
                client.submit(_request(key="no_such_object"))
            # The connection survives rejected submissions.
            assert client.ping()
        assert daemon.counters["jobs_rejected"] == 2
        assert daemon.counters["jobs_accepted"] == 0
    finally:
        _stop(daemon)


def test_protocol_garbage_poisons_only_that_connection(tmp_path):
    daemon, endpoint = _start(_config(tmp_path))
    try:
        with ServiceClient.connect(endpoint) as bad:
            bad.channel.sock.sendall(b"garbage!" * 4)
            reply = bad.channel.recv(timeout=10.0)
            assert reply[0] == "rejected"
            assert "protocol fault" in reply[1]
        assert _wait_for(lambda: daemon.counters["protocol_errors"] == 1)
        # A fresh connection is unaffected.
        with ServiceClient.connect(endpoint) as good:
            assert good.ping()
            assert good.submit_and_wait(_request())["verdict"] == "TRUE"
    finally:
        _stop(daemon)


def test_idle_connection_receives_heartbeats(tmp_path):
    daemon, endpoint = _start(_config(tmp_path, heartbeat_seconds=0.05))
    try:
        with ServiceClient.connect(endpoint) as client:
            message = client.channel.recv(timeout=10.0)
            assert message == ("heartbeat",)
    finally:
        _stop(daemon)


# ----------------------------------------------------------------------
# queueing: dedup, backpressure, disconnects
# ----------------------------------------------------------------------

def test_identical_concurrent_submissions_share_one_run(tmp_path):
    gate = threading.Event()
    daemon, endpoint = _start(_config(tmp_path, job_gate=gate))
    try:
        with ServiceClient.connect(endpoint) as first, \
                ServiceClient.connect(endpoint) as second:
            tag_a, job_a, meta_a = first.submit(_request())
            tag_b, job_b, meta_b = second.submit(_request())
            assert (tag_a, meta_a["dedup"]) == ("accepted", False)
            assert (tag_b, meta_b["dedup"]) == ("accepted", True)
            assert job_a == job_b
            gate.set()
            result_a = first.wait_result(job_a)
            result_b = second.wait_result(job_b)
        assert result_a["verdict"] == result_b["verdict"] == "TRUE"
        assert daemon.counters["jobs_run"] == 1
        assert daemon.counters["jobs_deduped"] == 1
    finally:
        gate.set()
        _stop(daemon)


def test_full_queue_answers_backpressure_not_collapse(tmp_path):
    gate = threading.Event()
    daemon, endpoint = _start(
        _config(tmp_path, queue_size=1, job_gate=gate))
    try:
        with ServiceClient.connect(endpoint) as client:
            client.submit(_request())  # occupies the whole queue
            with pytest.raises(SubmissionRejected, match="backpressure"):
                client.submit(_request(key="treiber"))
            assert daemon.counters["jobs_rejected"] == 1
            gate.set()
            # Once the queue drains, the same submission is admitted.
            assert _wait_for(lambda: not daemon._jobs)
            retried = client.submit_and_wait(_request(key="treiber"))
        assert retried["verdict"] == "TRUE"
    finally:
        gate.set()
        _stop(daemon)


def test_disconnected_client_job_runs_on_and_parks_in_cache(tmp_path):
    gate = threading.Event()
    daemon, endpoint = _start(_config(tmp_path, job_gate=gate))
    try:
        client = ServiceClient.connect(endpoint)
        client.submit(_request())
        client.close()  # walk away mid-job
        assert _wait_for(lambda: daemon.counters["client_disconnects"] == 1)
        gate.set()
        assert _wait_for(lambda: daemon.counters["results_parked"] == 1)
        # The resubmission finds the parked result.
        with ServiceClient.connect(endpoint) as again:
            result = again.submit_and_wait(_request())
        assert result["cached"] is True
        assert result["verdict"] == "TRUE"
        assert daemon.counters["jobs_run"] == 1
    finally:
        gate.set()
        _stop(daemon)


# ----------------------------------------------------------------------
# interruption, restart, resume
# ----------------------------------------------------------------------

def test_deadline_exhaustion_leaves_checkpoint_then_resume_finishes(tmp_path):
    daemon, endpoint = _start(_config(tmp_path))
    key = request_cache_key(build_request(kind="lin", key="treiber"))
    try:
        with ServiceClient.connect(endpoint) as client:
            starved = client.submit_and_wait(
                _request(key="treiber", deadline=0.0))
        assert starved["verdict"] == "UNKNOWN"
        assert starved["exit_code"] == 2
        assert starved["exhaustion"]["reason"] == "deadline"
        # UNKNOWN is never cached; the salvage checkpoint is on disk.
        assert daemon.cache.stats()["puts"] == 0
        assert os.path.exists(os.path.join(
            daemon.jobs_dir, f"{key}.ckpt"))

        with ServiceClient.connect(endpoint) as client:
            finished = client.submit_and_wait(_request(key="treiber"))
        assert finished["verdict"] == "TRUE"
        assert finished["resumed"] is True
        assert daemon.counters["jobs_resumed"] == 1
        # Decided: cached, and the spent checkpoint is gone.
        assert not os.path.exists(os.path.join(
            daemon.jobs_dir, f"{key}.ckpt"))
    finally:
        _stop(daemon)


def test_graceful_shutdown_interrupts_job_and_restart_resumes(tmp_path):
    gate = threading.Event()
    config = _config(tmp_path, job_gate=gate)
    daemon, endpoint = _start(config)
    closings = []

    client = ServiceClient.connect(endpoint)
    _tag, job_id, _meta = client.submit(_request(key="treiber"))
    # Shut down while the job is gated: the token trips, the explorer
    # checkpoints on its way out, and the UNKNOWN still gets delivered.
    daemon.shutdown()
    interrupted = client.wait_result(job_id, on_closing=closings.append)
    client.close()
    daemon.join(timeout=30.0)
    assert closings == ["daemon shutting down"]
    assert interrupted["verdict"] == "UNKNOWN"
    assert interrupted["exit_code"] == EXIT_INTERRUPTED
    assert interrupted["exhaustion"]["reason"] == REASON_INTERRUPTED
    key = request_cache_key(build_request(kind="lin", key="treiber"))
    ckpt = os.path.join(daemon.jobs_dir, f"{key}.ckpt")
    assert os.path.exists(ckpt)
    # The Unix socket path was cleaned up on exit.
    assert not os.path.exists(config.socket)

    # Same state dir, fresh daemon: the resubmission resumes.
    restarted, endpoint = _start(_config(tmp_path, state_dir=config.state_dir))
    try:
        with ServiceClient.connect(endpoint) as again:
            finished = again.submit_and_wait(_request(key="treiber"))
        assert finished["verdict"] == "TRUE"
        assert finished["resumed"] is True
        assert restarted.counters["jobs_resumed"] == 1
    finally:
        _stop(restarted)


def test_cache_survives_restart_and_corruption_forces_recompute(tmp_path):
    config = _config(tmp_path)
    daemon, endpoint = _start(config)
    with ServiceClient.connect(endpoint) as client:
        first = client.submit_and_wait(_request())
    _stop(daemon)

    restarted, endpoint = _start(
        _config(tmp_path, name="svc2", state_dir=config.state_dir))
    try:
        with ServiceClient.connect(endpoint) as client:
            warm = client.submit_and_wait(_request())
        assert warm["cached"] is True
        assert warm["verdict"] == first["verdict"]
        assert restarted.counters["jobs_run"] == 0

        # Corrupt the entry on disk: the daemon must quarantine it and
        # recompute, not crash or serve garbage.
        entries = restarted.cache.entries_dir
        (name,) = os.listdir(entries)
        path = os.path.join(entries, name)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(blob)

        with ServiceClient.connect(endpoint) as client:
            recomputed = client.submit_and_wait(_request())
        assert recomputed["cached"] is False
        assert recomputed["verdict"] == first["verdict"]
        assert restarted.cache.counters["corrupt_entries"] == 1
        assert os.listdir(restarted.cache.quarantine_dir) == [name]
        assert restarted.counters["jobs_run"] == 1

        # ...and the recomputed verdict is cached again.
        with ServiceClient.connect(endpoint) as client:
            assert client.submit_and_wait(_request())["cached"] is True
    finally:
        _stop(restarted)


def test_submissions_during_shutdown_are_rejected(tmp_path):
    from repro.service import ServiceError

    daemon, endpoint = _start(_config(tmp_path))
    client = ServiceClient.connect(endpoint)
    try:
        daemon.shutdown()
        # A submission racing the shutdown is never silently dropped:
        # either the goodbye arrives and the submission is rejected, or
        # the drained daemon already closed the socket and the failure
        # is loud.  (With no jobs in flight the daemon may exit before
        # the client reads the closing frame, hence both branches.)
        with pytest.raises((SubmissionRejected, ServiceError)):
            client.channel.recv_until(("closing",), timeout=10.0)
            client.submit(_request())
    finally:
        client.close()
        daemon.join(timeout=30.0)
