"""Registry-wide parity: a verdict through serve+submit == the direct run.

The acceptance criterion for the service PR: for every object in the
registry, submitting through the daemon yields the same verdict, the
same exit-code mapping, and (for FALSE objects) the same rendered
counterexample as calling the pipeline directly -- the daemon adds
transport, queueing and caching, never a different answer.

Bounds mirror ``tests/verify/test_reachability_parity.py``: 2x2 where
that completes quickly, 2x1 for the heavyweight list objects.
"""

import pytest

from repro.objects import BENCHMARKS, get
from repro.service import DaemonConfig, ServiceClient, VerificationDaemon
from repro.util.budget import exit_code_for
from repro.verify import check_linearizability, check_lock_freedom_auto

#: (threads, ops) per object; default 2x2, heavy objects at 2x1.
_SMALL_BOUNDS = {
    "dglm_queue": (2, 1),
    "hm_list": (2, 1),
    "lazy_list": (2, 1),
    "ms_queue": (2, 1),
    "optimistic_list": (2, 1),
}

CASES = [
    (key, *_SMALL_BOUNDS.get(key, (2, 2))) for key in sorted(BENCHMARKS)
]

#: Objects whose lock-freedom the registry marks decidable at 2x2;
#: a small slice keeps the lockfree leg cheap while covering both
#: verdicts and the diagnostic rendering.
_LOCKFREE_CASES = ["treiber", "newcas", "treiber_hp_buggy"]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-parity")
    daemon = VerificationDaemon(DaemonConfig(
        socket=str(root / "svc.sock"),
        state_dir=str(root / "state"),
        queue_size=4,
        job_workers=1,
    ))
    endpoint = daemon.start()
    yield endpoint
    daemon.shutdown()
    daemon.join(timeout=60.0)


def _submit(endpoint, **request):
    with ServiceClient.connect(endpoint) as client:
        return client.submit_and_wait(request, timeout=120.0)


@pytest.mark.parametrize(
    "key,threads,ops", CASES, ids=[f"{k}_{t}x{o}" for k, t, o in CASES]
)
def test_lin_verdict_through_service_matches_direct(service, key, threads,
                                                    ops):
    bench = get(key)
    direct = check_linearizability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops,
        workload=bench.default_workload(),
    )
    served = _submit(service, kind="lin", key=key, threads=threads, ops=ops)

    assert served["verdict"] == direct.verdict
    assert served["exit_code"] == exit_code_for(direct.verdict)
    if direct.linearizable is False:
        # The rendered counterexample must be byte-identical: the CLI
        # prints exactly this string on both paths.
        assert served["counterexample"] == direct.render_counterexample()
    else:
        assert served["counterexample"] is None


@pytest.mark.parametrize("key", _LOCKFREE_CASES)
def test_lockfree_verdict_through_service_matches_direct(service, key):
    bench = get(key)
    direct = check_lock_freedom_auto(
        bench.build(2), num_threads=2, ops_per_thread=2,
        workload=bench.default_workload(),
    )
    served = _submit(service, kind="lockfree", key=key)

    assert served["verdict"] == direct.verdict
    assert served["exit_code"] == exit_code_for(direct.verdict)
    if direct.lock_free is False:
        assert served["diagnostic"] == direct.render_diagnostic()
    else:
        assert served["diagnostic"] is None
