"""``repro submit`` retry flags: validation, backoff, exit-code parity.

The retry knobs must never change *what* the daemon answers -- only how
stubbornly the client dials.  The parity test pins that: the same job
submitted with and without ``--retries/--retry-backoff`` exits with the
same code, which is also the direct pipeline's code.
"""

import pytest

from repro.cli import main
from repro.objects import get
from repro.service import DaemonConfig, VerificationDaemon
from repro.util.budget import EXIT_UNKNOWN, exit_code_for
from repro.verify import check_linearizability


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("submit-retry")
    daemon = VerificationDaemon(DaemonConfig(
        socket=str(root / "svc.sock"),
        state_dir=str(root / "state"),
        queue_size=4,
        job_workers=1,
    ))
    endpoint = daemon.start()
    yield endpoint
    daemon.shutdown()
    daemon.join(timeout=60.0)


def test_zero_retries_rejected(capsys):
    code = main([
        "submit", "lin", "newcas", "--socket", "/nonexistent.sock",
        "--retries", "0",
    ])
    assert code == EXIT_UNKNOWN
    assert "--retries" in capsys.readouterr().err


def test_malformed_retry_backoff_rejected(capsys):
    code = main([
        "submit", "lin", "newcas", "--socket", "/nonexistent.sock",
        "--retry-backoff", "fast:please",
    ])
    assert code == EXIT_UNKNOWN
    assert "--retry-backoff" in capsys.readouterr().err


def test_unreachable_daemon_is_unknown_after_retries(tmp_path, capsys):
    missing = str(tmp_path / "nobody.sock")
    code = main([
        "submit", "lin", "newcas", "--socket", missing,
        "--retries", "3", "--retry-backoff", "0.01:0.02",
        "--connect-timeout", "0.5",
    ])
    assert code == EXIT_UNKNOWN
    err = capsys.readouterr().err
    assert "cannot connect" in err
    assert "3 attempt(s)" in err  # --retries reached the dialer


def test_retry_flags_preserve_exit_code_parity(service):
    bench = get("newcas")
    direct = check_linearizability(
        bench.build(2), bench.spec(), num_threads=2, ops_per_thread=1,
        workload=bench.default_workload(),
    )
    expected = exit_code_for(direct.verdict)
    argv = ["submit", "lin", "newcas", "--socket", service,
            "--threads", "2", "--ops", "1"]
    plain = main(list(argv))
    retried = main(argv + ["--retries", "5", "--retry-backoff", "0.05:0.5"])
    assert plain == expected
    assert retried == expected
