"""Socket transport: addressing, framed round trips, failure surfaces."""

import socket
import threading

import pytest

from repro.parallel.protocol import encode_frame
from repro.service.channel import (
    ServiceError,
    ServiceTimeout,
    SocketFrameChannel,
    listen_socket,
    parse_address,
)
from repro.util.retry import BackoffPolicy


# ----------------------------------------------------------------------
# addressing
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec,expected", [
    ("127.0.0.1:8080", ("tcp", ("127.0.0.1", 8080))),
    (":9000", ("tcp", ("127.0.0.1", 9000))),
    ("example.test:1", ("tcp", ("example.test", 1))),
    ("/tmp/repro.sock", ("unix", "/tmp/repro.sock")),
    ("relative.sock", ("unix", "relative.sock")),
    ("weird:path", ("unix", "weird:path")),  # non-numeric port = a path
])
def test_parse_address(spec, expected):
    assert parse_address(spec) == expected


# ----------------------------------------------------------------------
# transport
# ----------------------------------------------------------------------

def _accept_channel(listener):
    sock, _ = listener.accept()
    return SocketFrameChannel(sock)


def _serve_once(tmp_path, handler):
    """Run ``handler(server_channel)`` against a connecting client."""
    spec = str(tmp_path / "chan.sock")
    listener = listen_socket(spec)
    done = threading.Event()

    def _server():
        with _accept_channel(listener) as server:
            handler(server)
        done.set()

    thread = threading.Thread(target=_server, daemon=True)
    thread.start()
    client = SocketFrameChannel.connect(spec, timeout=5.0)
    return client, listener, done


def test_round_trip_both_directions(tmp_path):
    def handler(server):
        message = server.recv(timeout=5.0)
        server.send(("echo", message))

    client, listener, done = _serve_once(tmp_path, handler)
    with client:
        client.send(("hello", {"n": 1}))
        assert client.recv(timeout=5.0) == ("echo", ("hello", {"n": 1}))
        assert done.wait(5.0)
        assert client.recv(timeout=5.0) is None  # clean EOF
    listener.close()


def test_recv_timeout_raises_service_timeout(tmp_path):
    def handler(server):
        server.recv(timeout=5.0)  # hold the connection open, silent

    client, listener, _ = _serve_once(tmp_path, handler)
    with client:
        with pytest.raises(ServiceTimeout):
            client.recv(timeout=0.1)
        client.send(("bye",))
    listener.close()


def test_eof_mid_frame_is_an_error(tmp_path):
    def handler(server):
        frame = encode_frame(("result", "x" * 64))
        server.sock.sendall(frame[:len(frame) - 5])  # then close

    client, listener, done = _serve_once(tmp_path, handler)
    with client:
        assert done.wait(5.0)
        with pytest.raises(ServiceError, match="mid-frame"):
            while client.recv(timeout=5.0) is not None:
                pass
    listener.close()


def test_oversized_frame_refused_by_receiver(tmp_path):
    def handler(server):
        server.sock.sendall(encode_frame(("blob", b"y" * 4096)))

    spec_client = None

    def _connect(spec):
        nonlocal spec_client
        spec_client = SocketFrameChannel.connect(
            spec, timeout=5.0, max_frame_bytes=256,
        )
        return spec_client

    spec = str(tmp_path / "cap.sock")
    listener = listen_socket(spec)
    thread = threading.Thread(
        target=lambda: handler(_accept_channel(listener)), daemon=True
    )
    thread.start()
    with _connect(spec) as client:
        with pytest.raises(ServiceError, match="protocol fault"):
            client.recv(timeout=5.0)
    listener.close()


def test_connect_retries_then_gives_up(tmp_path):
    missing = str(tmp_path / "nobody-home.sock")
    slept = []
    with pytest.raises(ServiceError, match="cannot connect"):
        SocketFrameChannel.connect(
            missing, timeout=1.0, attempts=3,
            policy=BackoffPolicy(base=0.01, cap=0.04),
            sleep=slept.append,
        )
    assert len(slept) == 2  # backoff between the three attempts


def test_connect_succeeds_after_daemon_comes_up(tmp_path):
    # The reconnect story: first attempts are refused, then the
    # "daemon" binds and the retrying connect lands.
    spec = str(tmp_path / "late.sock")
    state = {"listener": None}

    def _sleep(_delay):
        if state["listener"] is None:
            state["listener"] = listen_socket(spec)

    client = SocketFrameChannel.connect(
        spec, timeout=5.0, attempts=5,
        policy=BackoffPolicy(base=0.01, cap=0.04), sleep=_sleep,
    )
    client.close()
    state["listener"].close()


def test_tcp_listen_and_connect_port_zero():
    listener = listen_socket("127.0.0.1:0")
    port = listener.getsockname()[1]

    def handler():
        sock, _ = listener.accept()
        with SocketFrameChannel(sock) as server:
            server.send(("hi",))

    thread = threading.Thread(target=handler, daemon=True)
    thread.start()
    with SocketFrameChannel.connect(f"127.0.0.1:{port}", timeout=5.0) as ch:
        assert ch.recv(timeout=5.0) == ("hi",)
    listener.close()


def test_stale_unix_socket_path_is_reclaimed(tmp_path):
    spec = str(tmp_path / "stale.sock")
    first = listen_socket(spec)
    first.close()  # path left behind, as after SIGKILL
    second = listen_socket(spec)  # must not raise EADDRINUSE
    second.close()


def test_send_on_closed_socket_raises(tmp_path):
    spec = str(tmp_path / "closed.sock")
    listener = listen_socket(spec)
    client = SocketFrameChannel.connect(spec, timeout=5.0)
    client.sock.close()
    with pytest.raises((ServiceError, OSError)):
        client.send(("hello",))
    listener.close()


# ----------------------------------------------------------------------
# partial reads across recv timeouts
# ----------------------------------------------------------------------

class _TricklingSocket:
    """Socket stub delivering one byte per ``recv``, timing out between.

    Regression stand-in for a slow/stalling peer: every other ``recv``
    raises ``socket.timeout``, and successful reads return a single
    byte.  A frame header (12 bytes) therefore *always* arrives split
    across many timed-out recv() calls.
    """

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._timeout_next = False

    def settimeout(self, _value):
        pass

    def recv(self, _size):
        self._timeout_next = not self._timeout_next
        if not self._timeout_next:
            raise socket.timeout("stub timeout")
        if self._pos >= len(self._data):
            return b""
        byte = self._data[self._pos:self._pos + 1]
        self._pos += 1
        return byte

    def close(self):
        pass


def test_recv_timeout_preserves_partial_header():
    # The decoder must keep partial-frame bytes (split *header*
    # included) across ServiceTimeout so a later recv() resumes
    # mid-frame instead of desynchronizing the stream.
    messages = [("progress", 1, 7, 42), ("result", 2, "payload" * 10)]
    data = b"".join(encode_frame(m) for m in messages)
    channel = SocketFrameChannel(_TricklingSocket(data))
    received = []
    while len(received) < len(messages):
        try:
            message = channel.recv(timeout=0.05)
        except ServiceTimeout:
            continue
        assert message is not None
        received.append(message)
    assert received == messages
    while True:  # clean EOF afterwards (stub may time out once more)
        try:
            assert channel.recv(timeout=0.05) is None
            break
        except ServiceTimeout:
            continue
