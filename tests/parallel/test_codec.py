"""Program wire codec: lambdas by value, everything else as usual.

Remote workers receive the program over a socket, so the codec must
round-trip the lambda-laden benchmark ASTs that the stdlib pickler
rejects -- and the rebuilt program must explore to *exactly* the same
system, or the byte-identical guarantee dies at the first remote shard.
"""

import pickle

import pytest

from repro.core.aut import dumps_aut
from repro.lang import ClientConfig, explore
from repro.objects import get
from repro.parallel.codec import (
    WIRE_PYTHON,
    CodecError,
    dumps_program,
    loads_program,
)


def _roundtrip(program, config):
    return loads_program(dumps_program(program, config))


def test_wire_python_is_major_minor():
    assert len(WIRE_PYTHON) == 2
    assert all(isinstance(part, int) for part in WIRE_PYTHON)


def test_plain_lambda_rejected_by_stdlib_but_codec_roundtrips():
    def make():
        return lambda L: L["x"] + 1

    fn = make()
    with pytest.raises(Exception):
        pickle.dumps(fn)
    rebuilt, _ = _roundtrip(fn, None)
    assert rebuilt({"x": 41}) == 42


def test_closure_cells_survive():
    def make(offset):
        return lambda L: L["x"] + offset

    rebuilt, _ = _roundtrip(make(100), None)
    assert rebuilt({"x": 1}) == 101


def test_nested_lambda_in_closure_survives():
    def make():
        inner = lambda v: v * 2  # noqa: E731
        return lambda L: inner(L["x"])

    rebuilt, _ = _roundtrip(make(), None)
    assert rebuilt({"x": 21}) == 42


def test_module_level_functions_still_pickle_by_reference():
    rebuilt, _ = _roundtrip(dumps_aut, None)
    assert rebuilt is dumps_aut


def test_unpicklable_payload_raises_codec_error():
    with pytest.raises(CodecError, match="serialize"):
        dumps_program(lambda L: L, {"bad": open("/dev/null")})


def test_garbage_blob_raises_codec_error():
    with pytest.raises(CodecError, match="deserialize"):
        loads_program(b"not a pickle at all")


@pytest.mark.parametrize("key", ["treiber", "ms_queue"])
def test_benchmark_program_explores_identically_after_roundtrip(key):
    bench = get(key)
    program = bench.build(2)
    config = ClientConfig(
        num_threads=2, ops_per_thread=1,
        workload=bench.default_workload(),
    )
    rebuilt_program, rebuilt_config = _roundtrip(program, config)
    original = dumps_aut(explore(program, config))
    rebuilt = dumps_aut(explore(rebuilt_program, rebuilt_config))
    assert rebuilt == original
