"""FaultPlan parsing and firing semantics (no processes involved)."""

import pytest

from repro.parallel.faults import Fault, FaultPlan, FaultPlanError


def test_parse_full_spec():
    plan = FaultPlan.parse("kill:1@40, stall:*@200 ,corrupt:0@10")
    assert [f.describe() for f in plan.faults] == [
        "kill:1@40", "stall:*@200", "corrupt:0@10"
    ]
    assert plan.faults[1].worker is None  # wildcard


def test_parse_empty_is_falsy():
    assert not FaultPlan.parse(None)
    assert not FaultPlan.parse("")
    assert not FaultPlan.parse(" , ")
    assert FaultPlan.parse("exit:0@1")


@pytest.mark.parametrize("spec", [
    "kill",                # no worker/threshold
    "kill:1",              # no threshold
    "explode:1@2",         # unknown kind
    "kill:x@2",            # bad worker
    "kill:-1@2",           # negative worker
    "kill:1@x",            # bad threshold
    "kill:1@-5",           # negative threshold
])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(spec)


def test_fault_matches_threshold_and_worker():
    fault = Fault(kind="kill", worker=1, after_states=10)
    assert not fault.matches(1, 9)
    assert fault.matches(1, 10)
    assert not fault.matches(0, 100)  # addressed to worker 1
    fault.fired = True
    assert not fault.matches(1, 100)


def test_next_for_returns_first_unfired():
    plan = FaultPlan.parse("kill:0@5,exit:0@5")
    first = plan.next_for(0, 5)
    assert first is plan.faults[0]
    first.fired = True
    assert plan.next_for(0, 5) is plan.faults[1]


def test_mark_fired_retires_one_fault_per_death():
    plan = FaultPlan.parse("kill:*@1,kill:*@1")
    plan.mark_fired(0)
    assert [f.fired for f in plan.faults] == [True, False]
    plan.mark_fired(3)  # wildcard matches any index
    assert [f.fired for f in plan.faults] == [True, True]
    plan.mark_fired(0)  # nothing left to retire; no error


def test_mark_fired_skips_other_workers():
    plan = FaultPlan.parse("kill:2@1,kill:0@1")
    plan.mark_fired(0)
    assert [f.fired for f in plan.faults] == [False, True]


# ----------------------------------------------------------------------
# network fault kinds (remote worker pool)
# ----------------------------------------------------------------------

def test_parse_network_kinds():
    plan = FaultPlan.parse("drop-conn:1@50,stall-socket:*@10,corrupt-frame:0@5")
    assert [f.kind for f in plan.faults] == [
        "drop-conn", "stall-socket", "corrupt-frame"
    ]


def test_parse_worker_shorthand_defaults_to_wildcard():
    # "kind@states" is shorthand for "kind:*@states".
    plan = FaultPlan.parse("drop-conn@50")
    fault = plan.faults[0]
    assert fault.kind == "drop-conn"
    assert fault.worker is None
    assert fault.after_states == 50
    assert fault.matches(7, 50)


def test_partition_is_supervisor_side():
    plan = FaultPlan.parse("partition@2,drop-conn:0@5")
    # Worker-side scheduling never sees the partition fault...
    assert plan.next_for(0, 10**9) is plan.faults[1]
    # ...the supervisor's per-wave hook does, exactly once.
    assert plan.next_supervisor_fault(1) is None
    fault = plan.next_supervisor_fault(2)
    assert fault is plan.faults[0]
    fault.fired = True
    assert plan.next_supervisor_fault(2) is None


def test_mark_fired_never_retires_partition():
    # A worker death must not consume the supervisor-side fault.
    plan = FaultPlan.parse("partition@1,kill:*@1")
    plan.mark_fired(0)
    assert [f.fired for f in plan.faults] == [False, True]
