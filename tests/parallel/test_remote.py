"""Remote worker pool: sharding over sockets with the network-fault model.

Workers here run as *threads* inside the test process (``WorkerRuntime``
is synchronous and socket-driven, so a daemon thread serves exactly like
a separate host would).  That keeps the suite hermetic -- but it also
means the process-level fault kinds (``kill``, ``exit``) must never be
injected into these runtimes: they would take the test process down.
Process-level faults are covered by ``scripts/remote_smoke.py``, which
spawns real worker processes.
"""

import threading
import time

import pytest

from repro.core.aut import dumps_aut
from repro.lang import ClientConfig, explore
from repro.lang.checkpoint import CheckpointSink, load_checkpoint
from repro.objects import get
from repro.parallel import FaultPlan, ParallelConfig, parallel_explore
from repro.parallel.remote import WorkerRuntime
from repro.util.metrics import Stats


def _bench_config(key="treiber", threads=2, ops=1):
    # ops=1 keeps systems small: worker threads share the GIL with the
    # supervisor here, so big state spaces explore far slower than the
    # separate-process runs in scripts/remote_smoke.py.
    bench = get(key)
    program = bench.build(threads)
    config = ClientConfig(
        num_threads=threads,
        ops_per_thread=ops,
        workload=bench.default_workload(),
    )
    return program, config


class _WorkerThread:
    """A WorkerRuntime served from a daemon thread, with cleanup."""

    def __init__(self, fault_plan=None, listen="127.0.0.1:0", connect=None):
        self.runtime = WorkerRuntime(
            listen=listen if connect is None else None,
            connect=connect,
            fault_plan=FaultPlan.parse(fault_plan),
        )
        self.address = (
            self.runtime.bind() if connect is None else None
        )
        self.thread = threading.Thread(
            target=self.runtime.serve_forever, daemon=True
        )
        self.thread.start()

    def stop(self):
        self.runtime.stop()
        self.thread.join(timeout=10.0)


@pytest.fixture
def worker():
    worker = _WorkerThread()
    yield worker
    worker.stop()


def _remote_parallel(*addresses, workers=0, **kwargs):
    return ParallelConfig(
        workers=workers, shard_states=16,
        remote=tuple(addresses), **kwargs,
    )


# ----------------------------------------------------------------------
# fault-free remote and mixed pools
# ----------------------------------------------------------------------

def test_remote_pool_matches_serial(worker):
    program, config = _bench_config()
    serial = dumps_aut(explore(program, config))
    stats = Stats()
    lts = parallel_explore(
        program, config, _remote_parallel(worker.address), stats=stats,
    )
    assert dumps_aut(lts) == serial
    assert stats.counters["explore.shard_acks"] > 0


def test_mixed_pool_matches_serial(worker):
    program, config = _bench_config("ms_queue")
    serial = dumps_aut(explore(program, config))
    lts = parallel_explore(
        program, config,
        _remote_parallel(worker.address, workers=2, transport="mixed"),
    )
    assert dumps_aut(lts) == serial


def test_one_worker_serves_sequential_runs(worker):
    # Sessions are serial per worker; a finished run must leave the
    # worker accepting the next supervisor.
    program, config = _bench_config()
    serial = dumps_aut(explore(program, config))
    for _ in range(2):
        lts = parallel_explore(
            program, config, _remote_parallel(worker.address),
        )
        assert dumps_aut(lts) == serial
    # The session counter ticks when the worker side finishes its
    # teardown, slightly after the supervisor returns: poll briefly.
    deadline = time.monotonic() + 5.0
    while worker.runtime.sessions_served < 2 \
            and time.monotonic() < deadline:
        time.sleep(0.02)
    assert worker.runtime.sessions_served == 2


# ----------------------------------------------------------------------
# network faults: drop-conn / corrupt-frame recover byte-identically
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec,counter", [
    ("drop-conn:*@20", "explore.remote_disconnects"),
    ("corrupt-frame:*@10", "explore.corrupt_frames"),
])
def test_network_fault_recovery_is_byte_identical(spec, counter):
    program, config = _bench_config()
    serial = dumps_aut(explore(program, config))
    worker = _WorkerThread(fault_plan=spec)  # local injection wins
    try:
        stats = Stats()
        lts = parallel_explore(
            program, config, _remote_parallel(worker.address), stats=stats,
        )
        assert dumps_aut(lts) == serial
        assert stats.counters[counter] >= 1
        assert stats.counters["explore.remote_redials"] >= 1
    finally:
        worker.stop()


# ----------------------------------------------------------------------
# degradation ladder and partition salvage
# ----------------------------------------------------------------------

def test_dead_remotes_degrade_to_local_forks():
    program, config = _bench_config()
    serial = dumps_aut(explore(program, config))
    stats = Stats()
    # Nothing listens on these; a tiny redial budget keeps it quick.
    parallel = ParallelConfig(
        workers=2, shard_states=16,
        remote=("127.0.0.1:9", "127.0.0.1:10"),
        remote_redial_budget=1, backoff_base=0.01, backoff_cap=0.05,
    )
    lts = parallel_explore(program, config, parallel, stats=stats)
    assert dumps_aut(lts) == serial
    assert stats.counters["explore.remote_slots_dead"] == 2
    assert stats.counters["explore.remote_outages"] == 1
    assert stats.counters["explore.degraded_to_local"] == 1


def test_forced_partition_salvages_checkpoint_and_degrades(tmp_path, worker):
    program, config = _bench_config()
    serial = dumps_aut(explore(program, config))
    path = tmp_path / "salvage.ckpt"
    stats = Stats()
    parallel = _remote_parallel(
        worker.address, fault_plan=FaultPlan.parse("partition@2"),
    )
    lts = parallel_explore(
        program, config, parallel, stats=stats,
        checkpoint=CheckpointSink(str(path)),
    )
    # The run still completes (local-fork rung) and stays exact.
    assert dumps_aut(lts) == serial
    assert stats.counters["explore.partitions"] == 1
    assert stats.counters["explore.remote_outages"] == 1
    assert stats.counters["explore.degraded_to_local"] == 1
    # The salvage checkpoint left at the partition is serial-loadable.
    assert path.exists()
    assert load_checkpoint(str(path)) is not None


# ----------------------------------------------------------------------
# agent mode: workers dial a listening supervisor
# ----------------------------------------------------------------------

def test_agent_dials_supervisor_unix_socket(tmp_path):
    program, config = _bench_config(ops=1)
    serial = dumps_aut(explore(program, config))
    spec = str(tmp_path / "sup.sock")
    parallel = ParallelConfig(
        workers=0, shard_states=16,
        remote_listen=spec, transport="remote",
    )
    # The agent redials with backoff until the supervisor binds.
    agent = _WorkerThread(connect=spec)
    try:
        stats = Stats()
        lts = parallel_explore(program, config, parallel, stats=stats)
        assert dumps_aut(lts) == serial
        assert stats.counters["explore.remote_agents_adopted"] == 1
    finally:
        agent.stop()


# ----------------------------------------------------------------------
# runtime argument validation
# ----------------------------------------------------------------------

def test_runtime_requires_exactly_one_mode():
    with pytest.raises(ValueError):
        WorkerRuntime()
    with pytest.raises(ValueError):
        WorkerRuntime(listen="127.0.0.1:0", connect="127.0.0.1:1")
