"""Sharded exploration: determinism under scheduling, failure and resume.

The contract under test is the PR's acceptance criterion: the ``.aut``
dump of a parallel run is byte-for-byte identical to serial exploration
-- including runs where workers are killed, hang, or corrupt their
result frames mid-shard -- and a budget-exhausted parallel run leaves a
checkpoint from which both serial and parallel resumption reproduce the
uninterrupted result exactly.
"""

import os
import time

import pytest
from hypothesis import given, settings

from repro.core.aut import dumps_aut
from repro.lang import ClientConfig, explore
from repro.lang.checkpoint import CheckpointSink, load_checkpoint
from repro.objects import get
from repro.parallel import (
    FaultPlan,
    ParallelConfig,
    maybe_parallel_explore,
    parallel_explore,
)
from repro.parallel.supervisor import Supervisor, _Worker
from repro.testing.generators import ProgramShape, program_strategy
from repro.util.budget import BudgetExhausted, RunBudget
from repro.util.metrics import Stats


def _bench_config(key, threads=2, ops=2, max_states=None):
    bench = get(key)
    program = bench.build(threads)
    config = ClientConfig(
        num_threads=threads,
        ops_per_thread=ops,
        workload=bench.default_workload(),
        max_states=max_states,
    )
    return program, config


def _parallel(workers=2, shard_states=16, **kwargs):
    return ParallelConfig(workers=workers, shard_states=shard_states, **kwargs)


# ----------------------------------------------------------------------
# fault-free determinism
# ----------------------------------------------------------------------

def test_parallel_matches_serial_treiber():
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    lts = parallel_explore(program, config, _parallel(workers=2))
    assert dumps_aut(lts) == serial


def test_parallel_matches_serial_ms_queue_four_workers():
    program, config = _bench_config("ms_queue")
    serial = dumps_aut(explore(program, config))
    lts = parallel_explore(program, config, _parallel(workers=4,
                                                      shard_states=128))
    assert dumps_aut(lts) == serial


def test_single_worker_still_uses_the_protocol():
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    stats = Stats()
    lts = parallel_explore(program, config, _parallel(workers=1), stats=stats)
    assert dumps_aut(lts) == serial
    assert stats.counters["explore.shards"] > 0
    assert stats.counters["explore.worker_busy_us"] > 0


def test_maybe_parallel_explore_dispatch():
    program, config = _bench_config("treiber")
    serial = dumps_aut(maybe_parallel_explore(program, config, workers=0))
    assert serial == dumps_aut(explore(program, config))
    sharded = maybe_parallel_explore(program, config, workers=2,
                                     shard_states=32)
    assert dumps_aut(sharded) == serial


def test_stats_record_states_like_serial():
    program, config = _bench_config("treiber")
    serial_stats, parallel_stats = Stats(), Stats()
    explore(program, config, stats=serial_stats)
    parallel_explore(program, config, _parallel(), stats=parallel_stats)
    for counter in ("explore.states", "explore.transitions"):
        assert parallel_stats.counters[counter] == serial_stats.counters[counter]


# ----------------------------------------------------------------------
# fault injection: every kind recovers to a byte-identical result
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec,counter", [
    ("kill:0@10", "explore.worker_crashes"),
    ("exit:1@10", "explore.worker_crashes"),
    ("corrupt:0@5", "explore.corrupt_frames"),
])
def test_fault_recovery_is_byte_identical(spec, counter):
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    stats = Stats()
    parallel = _parallel(fault_plan=FaultPlan.parse(spec))
    lts = parallel_explore(program, config, parallel, stats=stats)
    assert dumps_aut(lts) == serial
    assert stats.counters[counter] >= 1
    assert stats.counters["explore.requeues"] >= 1


def test_hung_worker_is_detected_and_shard_requeued():
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    stats = Stats()
    parallel = _parallel(
        fault_plan=FaultPlan.parse("stall:0@10"),
        heartbeat_timeout=1.0,
    )
    lts = parallel_explore(program, config, parallel, stats=stats)
    assert dumps_aut(lts) == serial
    assert stats.counters["explore.worker_hangs"] >= 1


def test_repeated_kills_degrade_to_in_process_fallback():
    # Every spawned worker is shot after its first expansion; with a
    # single allowed retry per shard the pool shrinks 2 -> 1 -> 0 and
    # the supervisor finishes serially -- still byte-identical.
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    stats = Stats()
    parallel = _parallel(
        fault_plan=FaultPlan.parse(",".join(["kill:*@1"] * 12)),
        max_shard_retries=1,
        backoff_base=0.01,
    )
    lts = parallel_explore(program, config, parallel, stats=stats)
    assert dumps_aut(lts) == serial
    assert stats.counters["explore.degraded_workers"] >= 1


def _fake_busy_worker(supervisor, index=0):
    """A _Worker whose process is a dead stand-in child, mid-shard."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    res_r, cmd_w = os.pipe()
    worker = _Worker(index=index, pid=pid, cmd=os.fdopen(cmd_w, "wb"),
                     res_fd=res_r)
    supervisor.workers[index] = worker
    return worker


def test_drain_serial_requeues_in_flight_shards():
    # Degrading to target == 0 while another worker is still mid-shard
    # must requeue that shard before the pool is torn down; dropping it
    # leaves the expansion table short of the reachable closure and the
    # final replay asserts.
    program, config = _bench_config("treiber")
    supervisor = Supervisor(program, config, _parallel())
    worker = _fake_busy_worker(supervisor)
    worker.shard = (0, [supervisor.init_key])
    supervisor.target = 0
    supervisor._drain_serial()
    assert not supervisor.workers
    assert not supervisor.pending
    assert supervisor.init_key in supervisor.expansions


def test_shard_deadline_stretches_hang_detection():
    # Heartbeats only flow between state expansions, so with a shard
    # deadline configured the supervisor waits for the child's own clean
    # exhaustion (deadline + one heartbeat of grace) before shooting it.
    program, config = _bench_config("treiber")
    parallel = _parallel(heartbeat_timeout=1.0, shard_deadline=5.0)
    supervisor = Supervisor(program, config, parallel)
    worker = _fake_busy_worker(supervisor)
    worker.shard = (0, [supervisor.init_key])

    worker.last_frame = time.monotonic() - 3.0  # silent, but within slack
    supervisor._check_hangs()
    assert 0 in supervisor.workers

    worker.last_frame = time.monotonic() - 7.0  # past deadline + grace
    supervisor._check_hangs()
    assert 0 not in supervisor.workers
    assert supervisor.backoff  # the shard was requeued, not lost


# ----------------------------------------------------------------------
# budget exhaustion, salvage checkpoints, resume
# ----------------------------------------------------------------------

def test_deadline_salvages_resumable_checkpoint(tmp_path):
    program, config = _bench_config("ms_queue")
    serial = dumps_aut(explore(program, config))
    path = str(tmp_path / "salvage.ckpt")
    # A stalled worker plus a short global deadline: the run cannot
    # finish, so it must exhaust with reason=deadline and salvage.
    parallel = _parallel(
        fault_plan=FaultPlan.parse("stall:0@5"),
        heartbeat_timeout=30.0,
    )
    with pytest.raises(BudgetExhausted) as exc:
        parallel_explore(
            program, config, parallel,
            budget=RunBudget(deadline_seconds=2.0),
            checkpoint=CheckpointSink(path, interval_seconds=3600.0),
        )
    assert exc.value.reason == "deadline"

    # The salvaged checkpoint is a serial safe point ...
    resumed_serial = explore(program, config, resume=load_checkpoint(path))
    assert dumps_aut(resumed_serial) == serial
    # ... and parallel resume reuses the carried expansions too.
    resumed_parallel = parallel_explore(
        program, config, _parallel(), resume=load_checkpoint(path)
    )
    assert dumps_aut(resumed_parallel) == serial


def test_max_states_cap_applies_to_parallel_runs(tmp_path):
    program, config = _bench_config("treiber", max_states=200)
    path = str(tmp_path / "cap.ckpt")
    with pytest.raises(BudgetExhausted) as exc:
        parallel_explore(
            program, config, _parallel(),
            checkpoint=CheckpointSink(path, interval_seconds=0.0),
        )
    assert exc.value.reason == "states"

    full_program, full_config = _bench_config("treiber")
    serial = dumps_aut(explore(full_program, full_config))
    resumed = explore(full_program, full_config, resume=load_checkpoint(path))
    assert dumps_aut(resumed) == serial


def test_parallel_resume_from_serial_checkpoint(tmp_path):
    # Checkpoints are one format: a serially-produced checkpoint feeds a
    # parallel resume and vice versa (the converse is covered above).
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    capped_program, capped_config = _bench_config("treiber", max_states=300)
    path = str(tmp_path / "serial.ckpt")
    with pytest.raises(BudgetExhausted):
        explore(capped_program, capped_config,
                checkpoint=CheckpointSink(path, interval_seconds=0.0))
    resumed = parallel_explore(
        program, config, _parallel(), resume=load_checkpoint(path)
    )
    assert dumps_aut(resumed) == serial


# ----------------------------------------------------------------------
# property: parallel == serial on generated client programs
# ----------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(instance=program_strategy(shape=ProgramShape(max_body_ops=4)))
def test_parallel_equals_serial_on_random_programs(instance):
    program, workload = instance
    config = ClientConfig(
        num_threads=2,
        ops_per_thread=1,
        workload=workload,
        max_states=4000,
    )
    try:
        serial = dumps_aut(explore(program, config))
    except BudgetExhausted:
        return  # state cap hit; nothing to compare
    lts = parallel_explore(program, config, _parallel(workers=2,
                                                      shard_states=8))
    assert dumps_aut(lts) == serial


# ----------------------------------------------------------------------
# heartbeat configuration
# ----------------------------------------------------------------------

def test_heartbeat_interval_must_leave_room_for_the_grace_window():
    program, config = _bench_config("treiber")
    budget = RunBudget()
    # Interval at (or above) the liveness timeout: every worker would be
    # declared hung between two of its own beats.
    bad = _parallel(heartbeat_seconds=2.0, heartbeat_timeout=2.0)
    with pytest.raises(ValueError, match="heartbeat_seconds"):
        Supervisor(program, config, bad, budget, Stats())
    with pytest.raises(ValueError, match="heartbeat_seconds"):
        Supervisor(program, config,
                   _parallel(heartbeat_seconds=0.0), budget, Stats())


def test_custom_heartbeat_interval_preserves_determinism():
    program, config = _bench_config("treiber")
    serial = dumps_aut(explore(program, config))
    parallel = _parallel(heartbeat_seconds=0.05, heartbeat_timeout=5.0)
    assert dumps_aut(parallel_explore(program, config, parallel)) == serial


def test_config_exposes_requeue_backoff_policy():
    parallel = _parallel(backoff_base=0.1, backoff_cap=0.4)
    policy = parallel.backoff_policy()
    assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.4]
    assert policy.jitter == 0.0  # requeue scheduling stays deterministic
