"""Frame protocol: round trips, corruption rejection, incremental decode."""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.protocol import (
    MAGIC,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)


MESSAGES = [
    ("shard", 0, [((1, 2), (3,))], None),
    ("progress", 1, 7, 42),
    ("result", 2, 9, [(("k",), [("l", ("d",), None)])], 1234),
    ("stop",),
]


def test_blocking_round_trip():
    buffer = io.BytesIO()
    for message in MESSAGES:
        write_frame(buffer, message)
    buffer.seek(0)
    for message in MESSAGES:
        assert read_frame(buffer) == message
    assert read_frame(buffer) is None  # clean EOF at a frame boundary


def test_eof_inside_frame_is_an_error():
    data = encode_frame(("result", 1, 2, [], 0))
    stream = io.BytesIO(data[:-3])
    with pytest.raises(ProtocolError):
        read_frame(stream)


def test_corrupt_payload_rejected_by_checksum():
    stream = io.BytesIO(encode_frame(("result", 1, 2, [], 0), corrupt=True))
    with pytest.raises(ProtocolError, match="checksum"):
        read_frame(stream)


def test_bad_magic_rejected():
    data = b"XXXX" + encode_frame(("stop",))[4:]
    with pytest.raises(ProtocolError, match="magic"):
        read_frame(io.BytesIO(data))


def test_absurd_length_rejected_without_allocation():
    header = struct.Struct("!4sII").pack(MAGIC, (1 << 30) + 1, 0)
    with pytest.raises(ProtocolError, match="claims"):
        read_frame(io.BytesIO(header))


def test_decoder_reassembles_byte_by_byte():
    data = b"".join(encode_frame(m) for m in MESSAGES)
    decoder = FrameDecoder()
    received = []
    for i in range(len(data)):
        received.extend(decoder.feed(data[i:i + 1]))
    assert received == MESSAGES
    assert decoder.pending_bytes == 0


def test_decoder_handles_arbitrary_chunking():
    data = b"".join(encode_frame(m) for m in MESSAGES)
    for chunk in (3, 7, 16, 1024):
        decoder = FrameDecoder()
        received = []
        for lo in range(0, len(data), chunk):
            received.extend(decoder.feed(data[lo:lo + chunk]))
        assert received == MESSAGES


def test_decoder_corruption_is_detected_mid_stream():
    good = encode_frame(("progress", 0, 0, 1))
    bad = encode_frame(("result", 0, 0, [], 0), corrupt=True)
    decoder = FrameDecoder()
    assert decoder.feed(good) == [("progress", 0, 0, 1)]
    with pytest.raises(ProtocolError):
        decoder.feed(bad)


def test_read_frame_honours_custom_cap():
    big = encode_frame(("result", 0, 0, [b"x" * 4096], 0))
    with pytest.raises(ProtocolError, match="claims"):
        read_frame(io.BytesIO(big), max_frame_bytes=1024)
    # The same frame passes under the default cap.
    assert read_frame(io.BytesIO(big))[0] == "result"


def test_decoder_rejects_oversized_frame_from_header_alone():
    decoder = FrameDecoder(max_frame_bytes=1024)
    header = struct.Struct("!4sII").pack(MAGIC, 2048, 0)
    # Only the 12-byte header is fed: the decoder must refuse before
    # ever buffering the claimed payload.
    with pytest.raises(ProtocolError, match="claims"):
        decoder.feed(header)


def test_decoder_stays_poisoned_after_protocol_error():
    decoder = FrameDecoder(max_frame_bytes=1024)
    with pytest.raises(ProtocolError):
        decoder.feed(struct.Struct("!4sII").pack(MAGIC, 2048, 0))
    assert decoder.poisoned
    # Even a perfectly valid frame is refused: framing sync is lost
    # for good once the stream has lied about itself.
    with pytest.raises(ProtocolError, match="poisoned"):
        decoder.feed(encode_frame(("stop",)))
    assert decoder.poisoned


def test_decoder_accepts_frame_exactly_at_cap():
    frame = encode_frame(("stop",))
    payload_len = len(frame) - 12
    decoder = FrameDecoder(max_frame_bytes=payload_len)
    assert decoder.feed(frame) == [("stop",)]


# ----------------------------------------------------------------------
# property: chunking can never change what a stream decodes to
# ----------------------------------------------------------------------

@st.composite
def _frames_and_cuts(draw):
    """A short frame stream plus an adversarial chunking of its bytes."""
    messages = draw(st.lists(
        st.sampled_from(MESSAGES) | st.tuples(
            st.just("result"),
            st.integers(0, 7),
            st.binary(max_size=64),
        ),
        min_size=1, max_size=5,
    ))
    data = b"".join(encode_frame(m) for m in messages)
    cuts = draw(st.lists(
        st.integers(0, len(data)), max_size=12,
    ).map(sorted))
    return messages, data, cuts


@given(_frames_and_cuts())
@settings(max_examples=200, deadline=None)
def test_decoder_invariant_under_adversarial_chunking(case):
    # The TCP layer may deliver any byte-split of the stream -- split
    # headers, split payloads, empty reads, several frames at once.
    # Whatever the chunking, the decoder must emit exactly the encoded
    # message sequence and end with nothing buffered.
    messages, data, cuts = case
    decoder = FrameDecoder()
    received = []
    bounds = [0] + cuts + [len(data)]
    for lo, hi in zip(bounds, bounds[1:]):
        received.extend(decoder.feed(data[lo:hi]))
    assert received == messages
    assert decoder.pending_bytes == 0
    assert not decoder.poisoned
