"""Smoke tests: every example script runs and prints sensible output."""

import runpy
import sys

import pytest


def run_example(path, argv, capsys):
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("examples/quickstart.py", ["newcas", "2", "1"], capsys)
    assert "linearizable:         True" in out
    assert "lock-free:            True" in out


def test_quickstart_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        run_example("examples/quickstart.py", ["nope"], capsys)


def test_quickstart_lock_based_skips_lock_freedom(capsys):
    out = run_example("examples/quickstart.py", ["fine_list", "2", "1"], capsys)
    assert "skipped (lock-based" in out


def test_ms_queue_analysis(capsys):
    out = run_example("examples/ms_queue_analysis.py", ["2", "1"], capsys)
    assert "essential internal steps" in out
    assert "L20" in out
    assert "linearizable (Thm 5.3): True" in out


def test_custom_object(capsys):
    out = run_example("examples/custom_object.py", [], capsys)
    assert "racy-dispenser" in out
    assert "linearizable: False" in out
    assert "atomic-dispenser" in out
    assert "linearizable: True" in out


@pytest.mark.slow
def test_bug_hunting(capsys):
    out = run_example("examples/bug_hunting.py", [], capsys)
    assert "lock-free: False" in out
    assert "linearizable: False" in out
    assert "divergence" in out
    assert "B12" in out          # the hazard-pointer spin


def test_cadp_interop(capsys, tmp_path):
    out = run_example(
        "examples/cadp_interop.py", ["newcas", str(tmp_path)], capsys
    )
    assert "system ~div quotient:   True" in out
    assert "quotient refines spec:  True" in out
    assert (tmp_path / "newcas.min.aut").exists()
