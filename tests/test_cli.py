"""CLI tests (argument parsing + end-to-end subcommands)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "ms_queue" in out
    assert "NOT lock-free" in out
    assert "14." in out


def test_verify_ok(capsys):
    code = main(["verify", "newcas", "--threads", "2", "--ops", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "linearizable: True" in out
    assert "lock-free: True" in out
    assert "obstruction-free: True" in out


def test_verify_bug_exit_code(capsys):
    code = main(["verify", "hw_queue", "--threads", "2", "--ops", "1"])
    out = capsys.readouterr().out
    assert code == 1
    assert "lock-free: False" in out
    assert "divergence" in out


def test_verify_lock_based_skips(capsys):
    code = main(["verify", "fine_list", "--threads", "2", "--ops", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "skipped (lock-based" in out


def test_explore_quotient_compare_round_trip(tmp_path, capsys):
    impl = str(tmp_path / "impl.aut")
    quotient = str(tmp_path / "quotient.aut")
    assert main(["explore", "newcas", "--ops", "1", "--out", impl]) == 0
    assert main(["quotient", "newcas", "--ops", "1", "--out", quotient]) == 0
    out = capsys.readouterr().out
    assert "essential internal steps" in out

    # The quotient is branching-divergence bisimilar to the system.
    code = main(["compare", impl, quotient, "--relation", "branching",
                 "--divergence"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bisimilar: True" in out

    # ... and trace-equivalent.
    assert main(["compare", impl, quotient, "--relation", "trace"]) == 0


def test_compare_mismatch_explains(tmp_path, capsys):
    from repro.core import make_lts
    from repro.core.aut import write_aut

    a = str(tmp_path / "a.aut")
    b = str(tmp_path / "b.aut")
    write_aut(make_lts(2, 0, [(0, "X", 1)]), a)
    write_aut(make_lts(2, 0, [(0, "Y", 1)]), b)
    code = main(["compare", a, b])
    out = capsys.readouterr().out
    assert code == 1
    assert "bisimilar: False" in out
    assert "distinguishing experiment" in out


def test_compare_weak_and_strong(tmp_path, capsys):
    from repro.core import make_lts
    from repro.core.aut import write_aut

    a = str(tmp_path / "a.aut")
    b = str(tmp_path / "b.aut")
    write_aut(make_lts(3, 0, [(0, "tau", 1), (1, "x", 2)]), a)
    write_aut(make_lts(2, 0, [(0, "x", 1)]), b)
    assert main(["compare", a, b, "--relation", "weak"]) == 0
    assert main(["compare", a, b, "--relation", "strong"]) == 1


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["verify", "not_a_benchmark"])


def test_verify_stats_table(capsys):
    code = main(["verify", "newcas", "--threads", "2", "--ops", "1",
                 "--stats"])
    out = capsys.readouterr().out
    assert code == 0
    assert "-- linearizability --" in out
    assert "-- lock-freedom --" in out
    assert "-- obstruction-freedom --" in out
    for stage_name in ("explore", "quotient", "refinement", "check", "total"):
        assert stage_name in out
    # "splits" is recorded by both refinement engines ("sweeps" would
    # pin the sweep engine, which is no longer the default).
    assert "states=" in out and "splits=" in out and "peak_rss_kb=" in out


def test_verify_json_dump(tmp_path, capsys):
    import json

    path = str(tmp_path / "stats.json")
    code = main(["verify", "newcas", "--threads", "2", "--ops", "1",
                 "--json", path])
    out = capsys.readouterr().out
    assert code == 0
    assert "-- linearizability --" not in out  # table only with --stats
    payload = json.loads(open(path).read())
    assert payload["schema"] == "repro.cli-stats/v1"
    assert payload["command"] == "verify"
    assert payload["target"] == "newcas"
    assert payload["config"]["threads"] == 2
    pipelines = payload["pipelines"]
    assert set(pipelines) == {
        "linearizability", "lock-freedom", "obstruction-freedom"
    }
    lin = pipelines["linearizability"]
    assert lin["schema"] == "repro.stats/v1"
    stages = {entry["stage"] for entry in lin["stages"]}
    assert {"explore", "quotient", "quotient/refinement", "check"} <= stages
    assert lin["counters"]["explore.states"] > 0
    assert lin["total_seconds"] > 0


def test_verify_without_stats_prints_no_table(capsys):
    main(["verify", "newcas", "--threads", "2", "--ops", "1"])
    out = capsys.readouterr().out
    assert "-- linearizability --" not in out
    assert "peak_rss_kb" not in out


def test_explore_and_quotient_stats(tmp_path, capsys):
    impl = str(tmp_path / "impl.aut")
    quotient = str(tmp_path / "q.aut")
    assert main(["explore", "newcas", "--ops", "1", "--out", impl,
                 "--stats"]) == 0
    out = capsys.readouterr().out
    assert "-- explore --" in out and "states=" in out
    assert main(["quotient", "newcas", "--ops", "1", "--out", quotient,
                 "--stats"]) == 0
    out = capsys.readouterr().out
    assert "-- quotient --" in out and "refinement" in out

    code = main(["compare", impl, quotient, "--relation", "trace", "--stats"])
    out = capsys.readouterr().out
    assert code == 0
    assert "-- compare --" in out
    assert "parse" in out and "check" in out


# ----------------------------------------------------------------------
# run budgets, three-valued exits, checkpoint/resume (docs/ROBUSTNESS.md)
# ----------------------------------------------------------------------

def test_lin_true_exits_zero(capsys):
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "linearizable: TRUE" in out


def test_lin_zero_deadline_exits_unknown(capsys):
    code = main(["lin", "ms_queue", "--deadline", "0"])
    out = capsys.readouterr().out
    assert code == 2
    assert "UNKNOWN" in out
    assert "deadline" in out
    assert "phase 'explore'" in out


def test_lin_degrade_reports_both_attempts(capsys):
    code = main(["lin", "ms_queue", "--deadline", "0", "--degrade"])
    out = capsys.readouterr().out
    assert code == 2
    assert "degrade: retrying" in out
    assert "degraded verdict" in out


def test_lin_false_exits_one(capsys):
    code = main(["lin", "hm_list_buggy", "--threads", "2", "--ops", "2"])
    out = capsys.readouterr().out
    assert code == 1
    assert "linearizable: FALSE" in out


def test_lockfree_exit_codes(capsys):
    assert main(["lockfree", "newcas", "--ops", "1"]) == 0
    assert "lock-free: TRUE" in capsys.readouterr().out
    assert main(["lockfree", "hw_queue", "--ops", "1"]) == 1
    assert "lock-free: FALSE" in capsys.readouterr().out
    assert main(["lockfree", "ms_queue", "--deadline", "0"]) == 2
    assert "UNKNOWN" in capsys.readouterr().out


def test_verify_unknown_exits_two(capsys):
    code = main(["verify", "newcas", "--ops", "1", "--deadline", "0"])
    out = capsys.readouterr().out
    assert code == 2
    assert "UNKNOWN" in out


def test_lin_stats_flushed_on_unknown(tmp_path, capsys):
    import json

    path = str(tmp_path / "stats.json")
    code = main(["lin", "ms_queue", "--deadline", "0", "--json", path])
    capsys.readouterr()
    assert code == 2
    payload = json.loads(open(path).read())
    assert payload["command"] == "lin"
    assert "linearizability t=2 ops=2 v=2" in payload["pipelines"]


def test_explore_checkpoint_resume_bit_identical(tmp_path, capsys):
    full = str(tmp_path / "full.aut")
    resumed = str(tmp_path / "resumed.aut")
    ckpt = str(tmp_path / "t.ckpt")
    assert main(["explore", "treiber", "--out", full]) == 0
    code = main(["explore", "treiber", "--out", resumed,
                 "--checkpoint", ckpt, "--max-states", "500"])
    out = capsys.readouterr().out
    assert code == 2
    assert "UNKNOWN" in out and "checkpoint left at" in out
    assert main(["explore", "treiber", "--out", resumed,
                 "--resume", ckpt]) == 0
    assert open(full).read() == open(resumed).read()


def test_explore_workers_matches_serial(tmp_path, capsys):
    serial = str(tmp_path / "serial.aut")
    sharded = str(tmp_path / "sharded.aut")
    assert main(["explore", "treiber", "--out", serial]) == 0
    assert main(["explore", "treiber", "--out", sharded,
                 "--workers", "2", "--shard-states", "16"]) == 0
    assert open(serial).read() == open(sharded).read()


def test_explore_workers_survives_injected_kill(tmp_path, capsys):
    serial = str(tmp_path / "serial.aut")
    faulted = str(tmp_path / "faulted.aut")
    assert main(["explore", "treiber", "--out", serial]) == 0
    assert main(["explore", "treiber", "--out", faulted,
                 "--workers", "2", "--fault-plan", "kill:0@10",
                 "--shard-states", "16"]) == 0
    assert open(serial).read() == open(faulted).read()


def test_explore_workers_hang_checkpoints_and_resumes(tmp_path, capsys):
    # A stalled worker under a global deadline: the run must exit 2 with
    # a salvaged checkpoint from which a serial resume completes.
    serial = str(tmp_path / "serial.aut")
    resumed = str(tmp_path / "resumed.aut")
    ckpt = str(tmp_path / "hang.ckpt")
    assert main(["explore", "treiber", "--out", serial]) == 0
    code = main(["explore", "treiber", "--out", resumed,
                 "--workers", "2", "--fault-plan", "stall:0@5",
                 "--shard-states", "16", "--deadline", "2",
                 "--checkpoint", ckpt])
    out = capsys.readouterr().out
    assert code == 2
    assert "UNKNOWN" in out and "deadline" in out
    assert "checkpoint left at" in out
    assert main(["explore", "treiber", "--out", resumed,
                 "--resume", ckpt]) == 0
    assert open(serial).read() == open(resumed).read()


def test_lin_with_workers_and_fault(capsys):
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--workers", "2", "--fault-plan", "exit:0@5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "linearizable: TRUE" in out


def test_lockfree_with_workers(capsys):
    code = main(["lockfree", "newcas", "--ops", "1", "--workers", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "lock-free: TRUE" in out


def test_degrade_descends_the_workload_lattice(capsys):
    code = main(["lin", "ms_queue", "--deadline", "0", "--degrade",
                 "--degrade-steps", "2"])
    out = capsys.readouterr().out
    assert code == 2
    # ops shrinks before values before threads, one rung per retry.
    assert "--threads 2 --ops 1 --values 2" in out
    assert "--threads 2 --ops 1 --values 1" in out
    assert out.count("degrade: retrying") == 2


def test_degrade_steps_bounds_the_descent(capsys):
    code = main(["lin", "ms_queue", "--deadline", "0", "--degrade",
                 "--degrade-steps", "1"])
    out = capsys.readouterr().out
    assert code == 2
    assert out.count("degrade: retrying") == 1


def test_lin_spec_checkpoint_then_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "spec.ckpt")
    assert main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--spec-checkpoint", ckpt]) == 0
    capsys.readouterr()
    import os
    assert os.path.exists(ckpt)
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--spec-resume", ckpt])
    out = capsys.readouterr().out
    assert code == 0
    assert "linearizable: TRUE" in out


def test_lin_degrade_rung_skips_stale_spec_resume(tmp_path, capsys):
    # A degrade rung shrinks (threads, ops, values), so the original
    # config's spec checkpoint no longer matches there; the rung must
    # regenerate the spec from scratch instead of crashing on a
    # CheckpointMismatch.
    ckpt = str(tmp_path / "spec.ckpt")
    assert main(["lin", "newcas", "--threads", "2", "--ops", "2",
                 "--spec-checkpoint", ckpt]) == 0
    capsys.readouterr()
    # --max-states exhausts the original config (impl ~1000 states) but
    # not the first degrade rung (ops 1, impl ~140 states).
    code = main(["lin", "newcas", "--threads", "2", "--ops", "2",
                 "--max-states", "600", "--degrade",
                 "--spec-resume", ckpt])
    out = capsys.readouterr().out
    assert code == 0
    assert "degrade: retrying" in out
    assert "degraded verdict: TRUE" in out


def test_lin_method_reachability_true_exits_zero(capsys):
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--method", "reachability"])
    out = capsys.readouterr().out
    assert code == 0
    assert "(reachability)" in out
    assert "linearizable: TRUE" in out
    assert "product" in out


def test_lin_method_reachability_false_exits_one(capsys):
    code = main(["lin", "hm_list_buggy", "--threads", "2", "--ops", "2",
                 "--method", "reachability"])
    out = capsys.readouterr().out
    assert code == 1
    assert "linearizable: FALSE" in out
    assert "no linearization" in out


def test_lin_method_both_agree_exits_zero(capsys):
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--method", "both"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[quotient]" in out
    assert "[reachability]" in out
    assert "both engines agree" in out


def test_lin_onthefly_reachability_false_expands_fraction(capsys):
    code = main(["lin", "hm_list_buggy", "--threads", "2", "--ops", "2",
                 "--method", "reachability", "--on-the-fly"])
    out = capsys.readouterr().out
    assert code == 1
    assert "linearizable: FALSE" in out
    assert "on-the-fly: expanded" in out


def test_lin_onthefly_quotient_early_exit(capsys):
    code = main(["lin", "hm_list_buggy", "--threads", "2", "--ops", "2",
                 "--method", "quotient", "--on-the-fly"])
    out = capsys.readouterr().out
    assert code == 1
    assert "linearizable: FALSE" in out
    assert "on-the-fly early exit" in out


def test_lin_onthefly_true_falls_back_to_full_pipeline(capsys):
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--on-the-fly"])
    out = capsys.readouterr().out
    assert code == 0
    assert "linearizable: TRUE" in out
    assert "early exit" not in out


def test_lin_onthefly_with_both_prints_disable_note(capsys):
    code = main(["lin", "newcas", "--threads", "2", "--ops", "1",
                 "--method", "both", "--on-the-fly"])
    out = capsys.readouterr().out
    assert code == 0
    assert "--on-the-fly is disabled with --method both" in out
    assert "both engines agree" in out


def test_lin_onthefly_with_workers_degrades_to_serial(capsys):
    code = main(["lin", "hm_list_buggy", "--threads", "2", "--ops", "2",
                 "--method", "reachability", "--on-the-fly",
                 "--workers", "2"])
    out = capsys.readouterr().out
    assert code == 1
    assert "--workers ignored" in out


def test_lin_method_both_disagreement_exits_three(capsys, monkeypatch):
    # Break the monitor so reachability wrongly reports TRUE on the
    # buggy list while the quotient engine still says FALSE: the CLI
    # must refuse to pick a winner and exit with the dedicated code.
    from repro.util.budget import EXIT_DISAGREEMENT
    from repro.verify import reachability

    monkeypatch.setattr(reachability, "_SKIP_VIOLATION_STATE", True)
    code = main(["lin", "hm_list_buggy", "--threads", "2", "--ops", "2",
                 "--method", "both"])
    out = capsys.readouterr().out
    assert code == EXIT_DISAGREEMENT == 3
    assert "ERROR" in out and "disagree" in out


def test_fuzz_vacuous_run_exits_nonzero(capsys):
    # n=0 with the program mix (and hence the canaries) disabled checks
    # nothing at all; that must never count as a pass, least of all
    # with --expect-bug.
    code = main(["fuzz", "--n", "0", "--no-programs"])
    out = capsys.readouterr().out
    assert code == 1
    assert "vacuous" in out

    code = main(["fuzz", "--n", "0", "--no-programs", "--expect-bug",
                 "--mutate", "skip-violation-state"])
    out = capsys.readouterr().out
    assert code == 1
    assert "vacuous" in out


def test_fuzz_monitor_mutation_is_caught(capsys):
    code = main(["fuzz", "--seed", "0", "--n", "0",
                 "--mutate", "drop-monitor-transition", "--expect-bug"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict:lin-engines" in out


def test_keyboard_interrupt_in_handler_exits_130(capsys, monkeypatch):
    from repro import cli

    def boom(_args):
        raise KeyboardInterrupt

    monkeypatch.setitem(cli.HANDLERS, "list", boom)
    assert main(["list"]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_fuzz_instance_deadline_counts_exhausted(capsys):
    code = main(["fuzz", "--seed", "3", "--n", "10",
                 "--instance-deadline", "0.0001"])
    out = capsys.readouterr().out
    # Every instance hits the deadline, so nothing was actually
    # checked -- that is a vacuous run, not a pass.
    assert code == 1
    assert "exhausted=13" in out
    assert "vacuous" in out


def test_fuzz_drop_budget_checks_mutation_is_caught(capsys):
    code = main(["fuzz", "--seed", "0", "--n", "20",
                 "--mutate", "drop-budget-checks", "--expect-bug"])
    out = capsys.readouterr().out
    assert code == 0
    assert "budget:governance" in out
