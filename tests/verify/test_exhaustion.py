"""Three-valued verdicts under exhausted budgets, for every pipeline.

The robustness contract: no verify pipeline raises on budget
exhaustion -- each returns an UNKNOWN result carrying a structured
:class:`~repro.util.budget.Exhaustion` record, and a generous budget
changes nothing about the verdict.
"""

import pytest

from repro.objects import get
from repro.util.budget import (
    FALSE,
    TRUE,
    UNKNOWN,
    CancellationToken,
    RunBudget,
)
from repro.verify import (
    check_linearizability,
    check_lock_freedom_abstract,
    check_lock_freedom_auto,
    check_obstruction_freedom,
)

NEWCAS = get("newcas")


def _zero_budget():
    return RunBudget(deadline_seconds=0.0)


def test_linearizability_unknown_at_zero_deadline():
    result = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=_zero_budget(),
    )
    assert result.linearizable is None
    assert result.verdict == UNKNOWN
    assert result.exhaustion.reason == "deadline"
    assert result.exhaustion.phase == "explore"
    # partial progress is reported, not lost
    assert result.total_seconds >= 0
    assert "deadline" in result.exhaustion.render()


def test_lock_freedom_unknown_at_zero_deadline():
    result = check_lock_freedom_auto(
        NEWCAS.build(2), num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=_zero_budget(),
    )
    assert result.lock_free is None
    assert result.verdict == UNKNOWN
    assert result.exhaustion.reason == "deadline"


def test_abstract_lock_freedom_unknown_at_zero_deadline():
    bench = get("ccas")
    result = check_lock_freedom_abstract(
        bench.build(2), bench.abstract(2),
        num_threads=2, ops_per_thread=1,
        workload=bench.default_workload(),
        budget=_zero_budget(),
    )
    assert result.lock_free is None
    assert result.verdict == UNKNOWN
    assert result.exhaustion is not None


def test_obstruction_freedom_unknown_at_zero_deadline():
    result = check_obstruction_freedom(
        NEWCAS.build(2), num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=_zero_budget(),
    )
    assert result.obstruction_free is None
    assert result.verdict == UNKNOWN
    assert result.exhaustion.reason == "deadline"


def test_generous_budget_leaves_verdicts_intact():
    budget = RunBudget(deadline_seconds=3600.0, max_states=10**9)
    lin = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=budget,
    )
    assert lin.verdict == TRUE
    assert lin.exhaustion is None
    lock = check_lock_freedom_auto(
        NEWCAS.build(2), num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=budget,
    )
    assert lock.verdict == TRUE
    assert lock.exhaustion is None


def test_false_verdict_is_false_not_unknown():
    bench = get("hw_queue")
    result = check_lock_freedom_auto(
        bench.build(2), num_threads=2, ops_per_thread=1,
        workload=[("deq", ())],
        budget=RunBudget(deadline_seconds=3600.0),
    )
    assert result.lock_free is False
    assert result.verdict == FALSE
    assert result.exhaustion is None


def test_cancellation_token_yields_interrupted_unknown():
    token = CancellationToken()
    token.set()
    result = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=RunBudget(token=token),
    )
    assert result.verdict == UNKNOWN
    assert result.exhaustion.reason == "interrupted"


@pytest.mark.parametrize("reason,budget_kwargs", [
    ("states", {"max_states": 5}),
    ("transitions", {"max_transitions": 5}),
])
def test_count_caps_surface_their_reason(reason, budget_kwargs):
    result = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=RunBudget(**budget_kwargs),
    )
    assert result.verdict == UNKNOWN
    assert result.exhaustion.reason == reason


def test_exhaustion_phase_names_the_loop():
    # The phase in the record names the loop where the budget actually
    # ran out, not just "somewhere in the pipeline".
    from repro.core import branching_partition
    from repro.lang import ClientConfig, explore
    from repro.util.budget import BudgetExhausted

    lts = explore(
        NEWCAS.build(2), ClientConfig(2, 1, NEWCAS.default_workload())
    )
    with pytest.raises(BudgetExhausted) as exc:
        branching_partition(lts, budget=_zero_budget())
    assert exc.value.phase == "refinement"
    with pytest.raises(BudgetExhausted) as exc:
        branching_partition(lts, reduce=True, budget=_zero_budget())
    assert exc.value.phase == "reduce"
