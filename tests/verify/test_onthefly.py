"""On-the-fly verification: streaming explorer + fused verdict engines.

Three layers of coverage for the streaming refactor:

* unit contracts of :class:`repro.lang.StreamingExplorer` (drain
  equality with the classic explorer, demand expansion, freeze
  semantics);
* registry-wide parity: for every object in the registry, both verdict
  engines with ``on_the_fly=True`` must return exactly the verdict
  their full-exploration counterparts return;
* witness validity: every early-exit FALSE counterexample must replay
  as an implementation trace the specification cannot produce
  (deterministically on the buggy registry objects, and property-based
  over random programs).
"""

import pytest
from hypothesis import given

from repro.core.aut import dumps_aut
from repro.lang import ClientConfig, StreamingExplorer, atomic_spec, explore, spec_lts
from repro.objects import BENCHMARKS, get
from repro.testing.generators import program_strategy
from repro.testing.oracles import is_trace_of
from repro.util.budget import BudgetExhausted
from repro.util.metrics import Stats
from repro.verify import (
    check_linearizability,
    check_linearizability_both,
    check_linearizability_reachability,
)

#: (threads, ops) per object; default 2x2, heavy objects at 2x1 (same
#: policy as the full-exploration parity suite).
_SMALL_BOUNDS = {
    "dglm_queue": (2, 1),
    "hm_list": (2, 1),
    "lazy_list": (2, 1),
    "ms_queue": (2, 1),
    "optimistic_list": (2, 1),
}

CASES = [
    (key, *_SMALL_BOUNDS.get(key, (2, 2))) for key in sorted(BENCHMARKS)
]


def _bench_config(key, threads=2, ops=2):
    bench = get(key)
    program = bench.build(threads)
    config = ClientConfig(
        num_threads=threads,
        ops_per_thread=ops,
        workload=bench.default_workload(),
    )
    return bench, program, config


# ----------------------------------------------------------------------
# StreamingExplorer unit contracts
# ----------------------------------------------------------------------

def test_drain_freeze_is_bit_identical_to_classic_explore():
    _, program, config = _bench_config("treiber")
    classic = explore(program, config)
    explorer = StreamingExplorer(program, config)
    events = 0
    while (batch := explorer.expand_next()) is not None:
        events += len(batch)
    assert explorer.done
    assert events == classic.num_transitions
    assert dumps_aut(explorer.freeze()) == dumps_aut(classic)


def test_events_carry_stable_interned_ids():
    _, program, config = _bench_config("newcas", ops=1)
    explorer = StreamingExplorer(program, config)
    seen = []
    while (batch := explorer.expand_next()) is not None:
        seen.extend(batch)
    frozen = explorer.freeze()
    labels = frozen.action_labels
    streamed = {(src, label, dst) for src, label, dst in seen}
    materialized = {
        (src, labels[aid], dst) for src, aid, dst in frozen.transitions()
    }
    assert streamed == materialized


def test_freeze_mid_stream_is_a_prefix():
    _, program, config = _bench_config("treiber")
    explorer = StreamingExplorer(program, config)
    for _ in range(10):
        assert explorer.expand_next() is not None
    partial = explorer.freeze()
    explorer.drain()
    full = explorer.freeze()
    assert partial.num_states <= full.num_states
    assert partial.num_transitions < full.num_transitions
    # interning stability: the partial prefix's transitions all appear
    # verbatim (same ids, same labels) in the drained system
    partial_edges = {
        (s, partial.action_labels[a], d) for s, a, d in partial.transitions()
    }
    full_edges = {
        (s, full.action_labels[a], d) for s, a, d in full.transitions()
    }
    assert partial_edges <= full_edges


def test_successors_of_requires_cache_edges():
    _, program, config = _bench_config("treiber", ops=1)
    explorer = StreamingExplorer(program, config)
    with pytest.raises(ValueError):
        explorer.successors_of(explorer.init_id)


def test_demand_expansion_interleaves_with_drain():
    _, program, config = _bench_config("treiber", ops=1)
    classic = explore(program, config)
    explorer = StreamingExplorer(program, config, cache_edges=True)
    # expand the initial state out of frontier order, twice (memoized)
    first = explorer.successors_of(explorer.init_id)
    assert first and explorer.is_expanded(explorer.init_id)
    assert explorer.successors_of(explorer.init_id) is first
    explorer.drain()
    # demand expansion must not duplicate or reorder the final system
    assert explorer.freeze().num_states == classic.num_states
    assert explorer.freeze().num_transitions == classic.num_transitions


def test_max_states_cap_raises_mid_stream():
    from repro.lang.client import StateExplosion

    _, program, config = _bench_config("treiber")
    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=50,
    )
    explorer = StreamingExplorer(program, capped)
    with pytest.raises((StateExplosion, BudgetExhausted)):
        explorer.drain()


# ----------------------------------------------------------------------
# registry-wide on-the-fly vs full-exploration parity (both engines)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "key,threads,ops", CASES, ids=[f"{k}_{t}x{o}" for k, t, o in CASES]
)
def test_onthefly_reachability_matches_full(key, threads, ops):
    bench = get(key)
    workload = bench.default_workload()
    full = check_linearizability_reachability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops, workload=workload,
    )
    fused = check_linearizability_reachability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops, workload=workload,
        on_the_fly=True,
    )
    assert fused.on_the_fly
    assert fused.verdict == full.verdict, (
        f"{key} at {threads}x{ops}: fused says {fused.verdict}, "
        f"full exploration says {full.verdict}"
    )
    if fused.linearizable is False:
        assert fused.counterexample
        assert fused.states_expanded is not None
        assert fused.states_expanded <= full.impl_states


@pytest.mark.parametrize(
    "key,threads,ops", CASES, ids=[f"{k}_{t}x{o}" for k, t, o in CASES]
)
def test_onthefly_quotient_matches_full(key, threads, ops):
    bench = get(key)
    workload = bench.default_workload()
    full = check_linearizability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops, workload=workload,
    )
    fused = check_linearizability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops, workload=workload,
        on_the_fly=True,
    )
    assert fused.on_the_fly
    assert fused.verdict == full.verdict, (
        f"{key} at {threads}x{ops}: on-the-fly says {fused.verdict}, "
        f"full pipeline says {full.verdict}"
    )
    # the early-exit lane only ever fires on FALSE; TRUE verdicts must
    # have fallen back to the full pipeline
    if fused.early_exit:
        assert fused.verdict == "FALSE"
    else:
        assert fused.impl_states == full.impl_states


# ----------------------------------------------------------------------
# early-exit FALSE witnesses replay as impl traces the spec cannot make
# ----------------------------------------------------------------------

def _assert_valid_witness(program, spec, threads, ops, workload, witness):
    impl = explore(program, ClientConfig(threads, ops, workload))
    spec_system = spec_lts(spec, threads, ops, workload)
    assert is_trace_of(impl, list(witness)), (
        "early-exit witness is not an implementation trace"
    )
    assert not is_trace_of(spec_system, list(witness)), (
        "early-exit witness is a specification trace (so it IS linearizable)"
    )


def test_early_exit_fires_on_hm_list_buggy_with_valid_witness():
    bench = get("hm_list_buggy")
    workload = bench.default_workload()
    result = check_linearizability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2, workload=workload,
        on_the_fly=True,
    )
    assert result.verdict == "FALSE"
    assert result.early_exit
    assert result.states_expanded is not None
    _assert_valid_witness(
        bench.build(2), bench.spec(), 2, 2, workload, result.counterexample
    )


@given(program_strategy())
def test_random_early_exit_witnesses_are_valid(drawn):
    program, workload = drawn
    spec = atomic_spec(program)
    try:
        result = check_linearizability(
            program, spec,
            num_threads=2, ops_per_thread=1, workload=workload,
            max_states=2000, on_the_fly=True,
        )
    except BudgetExhausted:
        return
    if not result.early_exit:
        return
    assert result.verdict == "FALSE"
    _assert_valid_witness(
        program, spec, 2, 1, workload, result.counterexample
    )


# ----------------------------------------------------------------------
# --method both: one exploration, two engines (satellite fix)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("key", ["newcas", "hm_list_buggy"])
def test_both_shares_one_exploration(key):
    bench = get(key)
    workload = bench.default_workload()
    sq, sr = Stats(), Stats()
    quotient, reach = check_linearizability_both(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2, workload=workload,
        stats_quotient=sq, stats_reachability=sr,
    )
    assert quotient.verdict == reach.verdict
    assert quotient.impl_states == reach.impl_states
    # both engines must record that they consumed the shared system
    assert any("shared_impl_states" in k for k in sq.counters), sq.counters
    assert any("shared_impl_states" in k for k in sr.counters), sr.counters
    # both results carry the one shared exploration's wall-clock time
    assert quotient.explore_seconds > 0 and reach.explore_seconds > 0
