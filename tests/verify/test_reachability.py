"""The BEEH reachability verdict engine: monitor, search, pipeline.

Covers the monitor transition functions directly, the full pipeline
(three-valued verdicts, stats stages, budget governance, sharded
exploration), and the counterexample-validity property: any violation
witness must be an implementation trace the specification cannot
produce (the mirror of the LTL/diagnostics validity tests).
"""

import pytest
from hypothesis import given

from repro.lang import ClientConfig, atomic_spec, explore, queue_spec, spec_lts
from repro.objects import get
from repro.testing import is_trace_of, program_strategy
from repro.util.budget import BudgetExhausted, RunBudget
from repro.util.metrics import Stats
from repro.verify import check_linearizability_reachability, reachability_search
from repro.verify.reachability import (
    initial_monitor,
    monitor_after_call,
    monitor_after_return,
)

NEWCAS = get("newcas")


# ----------------------------------------------------------------------
# the specification monitor
# ----------------------------------------------------------------------

def test_monitor_tracks_a_justifiable_history():
    spec = queue_spec()
    mset = initial_monitor(spec)
    assert mset  # all-idle is always justifiable
    mset = monitor_after_call(spec, mset, 1, "enq", (1,))
    mset = monitor_after_call(spec, mset, 2, "deq", ())
    # deq may return 1 only if enq linearized first -- both orders are
    # still open, so the set is non-empty.
    survived = monitor_after_return(spec, mset, 2, "deq", 1)
    assert survived
    # ...and the enq can then complete.
    assert monitor_after_return(spec, survived, 1, "enq", None)


def test_monitor_empties_on_an_impossible_return():
    spec = queue_spec()
    mset = initial_monitor(spec)
    mset = monitor_after_call(spec, mset, 1, "deq", ())
    # Nothing was ever enqueued: deq can only return EMPTY, not 5.
    assert monitor_after_return(spec, mset, 1, "deq", 5) == frozenset()


def test_monitor_drops_double_calls():
    spec = queue_spec()
    mset = initial_monitor(spec)
    mset = monitor_after_call(spec, mset, 1, "enq", (1,))
    # A second call by a busy thread cannot extend any configuration.
    assert monitor_after_call(spec, mset, 1, "enq", (2,)) == frozenset()


def test_monitor_recloses_after_return():
    # After t1's return filters the set, t2's still-pending op must be
    # linearizable against the *new* abstract states: the set has to be
    # re-closed, not just filtered.
    spec = queue_spec()
    mset = initial_monitor(spec)
    mset = monitor_after_call(spec, mset, 1, "enq", (1,))
    mset = monitor_after_return(spec, mset, 1, "enq", None)
    mset = monitor_after_call(spec, mset, 2, "deq", ())
    assert monitor_after_return(spec, mset, 2, "deq", 1)


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------

def test_reachability_result_fields():
    result = check_linearizability_reachability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
    )
    assert result.linearizable
    assert result.verdict == "TRUE"
    assert result.counterexample is None
    assert result.object_name == "newcas"
    assert result.method == "reachability"
    assert result.impl_states > 0
    assert result.product_states >= result.impl_states
    assert result.monitor_states > 0
    assert result.num_threads == 2 and result.ops_per_thread == 1
    assert result.total_seconds > 0
    assert "no counterexample" in result.render_counterexample()


def test_reachability_counterexample_render():
    bench = get("hm_list_buggy")
    result = check_linearizability_reachability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2,
        workload=[("add", (1,)), ("remove", (1,))],
    )
    assert result.linearizable is False
    text = result.render_counterexample()
    assert "remove" in text
    assert "no linearization" in text


def test_workload_is_required():
    with pytest.raises(ValueError):
        check_linearizability_reachability(NEWCAS.build(2), NEWCAS.spec())


def test_reachability_stats_populated():
    stats = Stats()
    result = check_linearizability_reachability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        stats=stats,
    )
    assert result.stats is stats
    for name in ("explore", "reachability"):
        assert stats.stage_seconds[name] >= 0
    assert stats.counters["explore.states"] == result.impl_states
    assert stats.counters["reachability.product_states"] == result.product_states
    assert stats.counters["reachability.monitor_states"] == result.monitor_states


def test_max_states_gives_unknown_in_explore_phase():
    bench = get("ms_queue")
    result = check_linearizability_reachability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2,
        workload=bench.default_workload(),
        max_states=50,
    )
    assert result.linearizable is None
    assert result.verdict == "UNKNOWN"
    assert result.exhaustion is not None
    assert result.exhaustion.phase == "explore"


def test_zero_deadline_gives_unknown():
    result = check_linearizability_reachability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        budget=RunBudget(deadline_seconds=0.0),
    )
    assert result.verdict == "UNKNOWN"
    assert result.exhaustion is not None


def test_search_budget_fires_in_reachability_phase():
    lts = explore(
        NEWCAS.build(2),
        ClientConfig(2, 1, NEWCAS.default_workload()),
    )
    with pytest.raises(BudgetExhausted) as excinfo:
        reachability_search(
            lts, NEWCAS.spec(), budget=RunBudget(deadline_seconds=0.0)
        )
    assert excinfo.value.exhaustion.phase == "reachability"


def test_parallel_exploration_matches_serial():
    serial = check_linearizability_reachability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
    )
    sharded = check_linearizability_reachability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        workers=2,
    )
    assert sharded.linearizable is serial.linearizable is True
    assert sharded.impl_states == serial.impl_states
    assert sharded.product_states == serial.product_states


def test_non_history_labels_are_rejected():
    from repro.core.lts import make_lts
    from repro.lang.state import ModelError

    lts = make_lts(2, 0, [(0, "not-a-history-label", 1)])
    with pytest.raises(ModelError):
        reachability_search(lts, queue_spec())


# ----------------------------------------------------------------------
# counterexample validity (satellite: witness must replay)
# ----------------------------------------------------------------------

def _assert_valid_witness(impl, spec, bounds, workload, witness):
    num_threads, ops_per_thread = bounds
    spec_system = spec_lts(spec, num_threads, ops_per_thread, workload)
    assert is_trace_of(impl, list(witness)), (
        "violation witness is not an implementation trace"
    )
    assert not is_trace_of(spec_system, list(witness)), (
        "violation witness is a specification trace (so it IS linearizable)"
    )


def test_hm_list_buggy_witness_is_valid():
    bench = get("hm_list_buggy")
    workload = [("add", (1,)), ("remove", (1,))]
    result = check_linearizability_reachability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2, workload=workload,
    )
    assert result.linearizable is False
    impl = explore(bench.build(2), ClientConfig(2, 2, workload))
    _assert_valid_witness(
        impl, bench.spec(), (2, 2), workload, result.counterexample
    )


@given(program_strategy())
def test_random_program_witnesses_are_valid(drawn):
    program, workload = drawn
    spec = atomic_spec(program)
    try:
        impl = explore(
            program, ClientConfig(2, 1, workload, max_states=2000)
        )
    except BudgetExhausted:
        return
    search = reachability_search(impl, spec)
    if search.holds:
        return
    _assert_valid_witness(
        impl, spec, (2, 1), workload, search.counterexample
    )
