"""Obstruction-freedom checker tests."""

import pytest

from repro.core.lts import LTS, TAU
from repro.objects import get
from repro.verify import (
    check_obstruction_freedom,
    solo_tau_cycle_states,
    transition_thread,
)


def test_transition_thread_from_labels_and_annotations():
    lts = LTS()
    call = lts.action_id(("call", 2, "m", ()))
    assert transition_thread(lts, call, None) == 2
    assert transition_thread(lts, 0, "t1.L28") == 1
    assert transition_thread(lts, 0, "t12.atomic") == 12
    assert transition_thread(lts, 0, None) is None
    assert transition_thread(lts, 0, "weird") is None


def test_solo_cycles_separated_by_thread():
    lts = LTS()
    # t1 spins between 0 and 1; t2 has a single step elsewhere.
    lts.add_transition(0, TAU, 1, annotation="t1.A")
    lts.add_transition(1, TAU, 0, annotation="t1.B")
    lts.add_transition(1, TAU, 2, annotation="t2.C")
    assert set(solo_tau_cycle_states(lts, 1)) == {0, 1}
    assert solo_tau_cycle_states(lts, 2) == []


def test_mixed_thread_cycle_is_not_solo():
    lts = LTS()
    lts.add_transition(0, TAU, 1, annotation="t1.A")
    lts.add_transition(1, TAU, 0, annotation="t2.B")
    assert solo_tau_cycle_states(lts, 1) == []
    assert solo_tau_cycle_states(lts, 2) == []


@pytest.mark.parametrize("key,expected", [
    ("treiber", True),
    ("treiber_hp", True),
    ("treiber_hp_buggy", False),
    ("hw_queue", False),
    ("ms_queue", True),
    ("hsy_stack", True),
])
def test_benchmark_obstruction_freedom(key, expected):
    bench = get(key)
    result = check_obstruction_freedom(
        bench.build(2), num_threads=2, ops_per_thread=2,
        workload=bench.default_workload(),
    )
    assert result.obstruction_free == expected
    if not expected:
        assert result.spinning_thread is not None
        text = result.render_diagnostic()
        assert "spins in isolation" in text
        # Every cycle step belongs to the spinning thread.
        for step in result.diagnostic.cycle:
            assert step.annotation.startswith(f"t{result.spinning_thread}.")
    else:
        assert "no solo divergence" in result.render_diagnostic()


def test_obstruction_freedom_implied_by_lock_freedom():
    # Lock-freedom implies obstruction-freedom: check agreement on the
    # benchmarks where we know both verdicts.
    for key in ("treiber", "ms_queue", "dglm_queue", "newcas"):
        bench = get(key)
        result = check_obstruction_freedom(
            bench.build(2), num_threads=2, ops_per_thread=1,
            workload=bench.default_workload(),
        )
        assert result.obstruction_free


def test_workload_required():
    bench = get("treiber")
    with pytest.raises(ValueError):
        check_obstruction_freedom(bench.build(2))
