"""Verification pipeline API tests (lightweight objects only)."""

import pytest

from repro.objects import get
from repro.verify import (
    check_linearizability,
    check_lock_freedom_abstract,
    check_lock_freedom_auto,
)

NEWCAS = get("newcas")
HW = get("hw_queue")


def test_linearizability_result_fields():
    result = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
    )
    assert result.linearizable
    assert result.counterexample is None
    assert result.object_name == "newcas"
    assert result.impl_states > result.impl_quotient_states
    assert result.spec_states > 0
    assert result.num_threads == 2 and result.ops_per_thread == 1
    assert result.total_seconds > 0
    assert result.reduction_factor > 1
    assert "no counterexample" in result.render_counterexample()


def test_linearizability_counterexample_render():
    bench = get("hm_list_buggy")
    result = check_linearizability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2,
        workload=[("add", (1,)), ("remove", (1,))],
    )
    assert not result.linearizable
    text = result.render_counterexample()
    assert "remove" in text and "initial state" in text


def test_lock_freedom_result_fields():
    result = check_lock_freedom_auto(
        NEWCAS.build(2), num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
    )
    assert result.lock_free
    assert result.diagnostic is None
    assert result.quotient_states < result.impl_states
    assert "no divergence" in result.render_diagnostic()


def test_lock_freedom_violation_diagnostic():
    result = check_lock_freedom_auto(
        HW.build(2), num_threads=2, ops_per_thread=1,
        workload=[("deq", ())],
    )
    assert not result.lock_free
    assert result.diagnostic is not None
    assert "divergence" in result.render_diagnostic()


def test_workload_is_required():
    with pytest.raises(ValueError):
        check_linearizability(NEWCAS.build(2), NEWCAS.spec())
    with pytest.raises(ValueError):
        check_lock_freedom_auto(NEWCAS.build(2))
    with pytest.raises(ValueError):
        check_lock_freedom_abstract(NEWCAS.build(2), NEWCAS.build(2))


def test_max_states_propagates():
    # The pipeline absorbs the StateExplosion into a three-valued
    # UNKNOWN result instead of letting it escape (see docs/ROBUSTNESS.md).
    bench = get("ms_queue")
    result = check_linearizability(
        bench.build(2), bench.spec(),
        num_threads=2, ops_per_thread=2,
        workload=bench.default_workload(),
        max_states=50,
    )
    assert result.linearizable is None
    assert result.verdict == "UNKNOWN"
    assert result.exhaustion is not None
    assert result.exhaustion.reason == "states"
    assert result.exhaustion.phase == "explore"


def test_abstract_pipeline_reports_sizes():
    bench = get("ccas")
    result = check_lock_freedom_abstract(
        bench.build(2), bench.abstract(2),
        num_threads=2, ops_per_thread=1,
        workload=bench.default_workload(),
    )
    assert result.div_bisimilar
    assert result.lock_free
    assert result.object_name == "ccas"
    assert result.abstract_name == "abstract-ccas"
    assert result.seconds > 0


def test_ltl_route_agrees_with_theorem_5_9():
    """Lock-freedom via the LTL formula == via div-bisim (both routes)."""
    from repro.lang import ClientConfig, explore
    from repro.ltl import check_lock_freedom_ltl

    for key, expected in (("newcas", True), ("hw_queue", False)):
        bench = get(key)
        lts = explore(
            bench.build(2), ClientConfig(2, 1, bench.default_workload())
        )
        assert check_lock_freedom_ltl(lts).holds == expected
        auto = check_lock_freedom_auto(
            bench.build(2), num_threads=2, ops_per_thread=1,
            workload=bench.default_workload(),
        )
        assert auto.lock_free == expected


def test_lock_freedom_methods_agree():
    """The union (Thm 5.9) and tau-cycle routes give the same verdict."""
    for key in ("newcas", "hw_queue", "treiber", "treiber_hp_buggy"):
        bench = get(key)
        verdicts = []
        for method in ("union", "tau-cycle"):
            result = check_lock_freedom_auto(
                bench.build(2), num_threads=2, ops_per_thread=1,
                workload=bench.default_workload(), method=method,
            )
            verdicts.append(result.lock_free)
        assert verdicts[0] == verdicts[1]


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        check_lock_freedom_auto(
            NEWCAS.build(2), num_threads=1, ops_per_thread=1,
            workload=NEWCAS.default_workload(), method="bogus",
        )


def test_linearizability_stats_populated():
    from repro.util.metrics import Stats

    stats = Stats()
    result = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        stats=stats,
    )
    assert result.stats is stats
    for name in ("explore", "spec", "quotient", "quotient/refinement", "check"):
        assert stats.stage_seconds[name] >= 0
    assert stats.counters["explore.states"] == result.impl_states
    assert stats.counters["quotient.impl_states"] == result.impl_quotient_states
    assert stats.counters["quotient.spec_states"] == result.spec_quotient_states
    assert stats.counters["check.visited_pairs"] > 0
    # "splits" is recorded by both refinement engines; "sweeps" only by the sweep engine.
    assert stats.counters["quotient/refinement.splits"] > 0
    assert stats.peak_rss_kb > 0


def test_lock_freedom_stats_populated():
    from repro.util.metrics import Stats

    for method in ("union", "tau-cycle"):
        stats = Stats()
        result = check_lock_freedom_auto(
            NEWCAS.build(2), num_threads=2, ops_per_thread=1,
            workload=NEWCAS.default_workload(), method=method,
            stats=stats,
        )
        assert result.stats is stats
        assert stats.counters["explore.states"] == result.impl_states
        assert stats.counters["quotient.impl_states"] == result.quotient_states
        assert stats.stage_seconds["check"] >= 0
        if method == "union":
            assert stats.counters["check/refinement.splits"] > 0


def test_shard_states_reaches_the_supervisor():
    # --shard-states must actually change the sharding of lin/lockfree
    # parallel exploration, not be silently dropped on the way down.
    from repro.util.metrics import Stats

    coarse, fine = Stats(), Stats()
    for stats, shard_states in ((coarse, None), (fine, 2)):
        result = check_linearizability(
            NEWCAS.build(2), NEWCAS.spec(),
            num_threads=2, ops_per_thread=1,
            workload=NEWCAS.default_workload(),
            workers=2, shard_states=shard_states, stats=stats,
        )
        assert result.linearizable is True
    assert fine.counters["explore.shards"] > coarse.counters["explore.shards"]

    stats = Stats()
    result = check_lock_freedom_auto(
        NEWCAS.build(2), num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        workers=2, shard_states=2, stats=stats,
    )
    assert result.lock_free is True
    assert stats.counters["explore.shards"] == fine.counters["explore.shards"]


def test_stats_disabled_gives_identical_verdicts():
    from repro.util.metrics import Stats

    plain = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
    )
    assert plain.stats is None
    instrumented = check_linearizability(
        NEWCAS.build(2), NEWCAS.spec(),
        num_threads=2, ops_per_thread=1,
        workload=NEWCAS.default_workload(),
        stats=Stats(),
    )
    assert plain.linearizable == instrumented.linearizable
    assert plain.impl_states == instrumented.impl_states
    assert plain.impl_quotient_states == instrumented.impl_quotient_states
