"""Registry-wide verdict parity: reachability engine == quotient engine.

The two linearizability backends share nothing past the exploration
core -- one refines branching-bisimulation quotients (Theorem 5.3), the
other searches the implementation x specification-monitor product (the
BEEH reduction) -- so at identical client bounds their verdicts must
coincide on every object in the registry.  A disagreement on any object
is an engine bug; the per-object parametrized IDs name the culprit.

Bounds are 2x2 where that completes quickly and 2x1 for the heavyweight
list objects (their 2x2 parity is exercised by the benchmark smoke and
the nightly lane instead).
"""

import pytest

from repro.objects import BENCHMARKS, get
from repro.verify import check_linearizability, check_linearizability_reachability

#: (threads, ops) per object; default 2x2, heavy objects at 2x1.
_SMALL_BOUNDS = {
    "dglm_queue": (2, 1),
    "hm_list": (2, 1),
    "lazy_list": (2, 1),
    "ms_queue": (2, 1),
    "optimistic_list": (2, 1),
}

CASES = [
    (key, *_SMALL_BOUNDS.get(key, (2, 2))) for key in sorted(BENCHMARKS)
]


@pytest.mark.parametrize(
    "key,threads,ops", CASES, ids=[f"{k}_{t}x{o}" for k, t, o in CASES]
)
def test_verdict_engines_agree(key, threads, ops):
    bench = get(key)
    workload = bench.default_workload()
    quotient = check_linearizability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops, workload=workload,
    )
    reach = check_linearizability_reachability(
        bench.build(threads), bench.spec(),
        num_threads=threads, ops_per_thread=ops, workload=workload,
    )
    assert quotient.verdict in ("TRUE", "FALSE")
    assert reach.verdict == quotient.verdict, (
        f"{key} at {threads}x{ops}: quotient says {quotient.verdict}, "
        f"reachability says {reach.verdict} -- an engine bug"
    )
    # The registry records the expected ground truth; both engines must
    # also match it, not merely each other.
    expected = "TRUE" if bench.expect_linearizable else "FALSE"
    if (threads, ops) == (2, 2) or bench.expect_linearizable:
        assert reach.verdict == expected
