"""Property tests for state canonicalization (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.state import canonicalize
from repro.lang.values import Ref

COMMON = settings(max_examples=100, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def value_strategy(num_nodes):
    base = st.one_of(
        st.integers(min_value=-3, max_value=3),
        st.booleans(),
        st.none(),
        st.builds(Ref, st.integers(min_value=0, max_value=max(0, num_nodes - 1)))
        if num_nodes else st.none(),
    )
    return st.one_of(base, st.tuples(base, base))


@st.composite
def state_strategy(draw):
    num_nodes = draw(st.integers(min_value=0, max_value=5))
    values = value_strategy(num_nodes)
    heap = tuple(
        tuple([draw(st.booleans())] + draw(st.lists(values, min_size=2, max_size=2)))
        for _ in range(num_nodes)
    )
    globals_ = tuple(draw(st.lists(values, min_size=0, max_size=3)))
    num_threads = draw(st.integers(min_value=1, max_value=2))
    threads = tuple(
        (draw(st.integers(min_value=-1, max_value=1)),
         draw(st.integers(min_value=-1, max_value=3)),
         tuple(draw(st.lists(values, min_size=0, max_size=2))),
         draw(st.integers(min_value=0, max_value=2)))
        for _ in range(num_threads)
    )
    return globals_, heap, threads


def all_refs(value, acc):
    if type(value) is Ref:
        acc.append(value)
    elif type(value) is tuple:
        for item in value:
            all_refs(item, acc)
    return acc


@COMMON
@given(state_strategy())
def test_canonicalize_idempotent(state):
    once = canonicalize(*state)
    twice = canonicalize(*once)
    assert once == twice


@COMMON
@given(state_strategy())
def test_canonicalize_refs_are_dense_and_valid(state):
    globals_, heap, threads = canonicalize(*state)
    refs = []
    for value in globals_:
        all_refs(value, refs)
    for record in threads:
        all_refs(record[2], refs)
    for node in heap:
        for value in node[1:]:
            all_refs(value, refs)
    for ref in refs:
        assert 0 <= ref.index < len(heap)
    # Every retained node is reachable from a root -> referenced.
    reachable = set()
    frontier = []
    for value in globals_:
        all_refs(value, frontier)
    for record in threads:
        all_refs(record[2], frontier)
    while frontier:
        ref = frontier.pop()
        if ref.index in reachable:
            continue
        reachable.add(ref.index)
        for value in heap[ref.index][1:]:
            all_refs(value, frontier)
    assert reachable == set(range(len(heap)))


@COMMON
@given(state_strategy())
def test_canonicalize_preserves_thread_scalars(state):
    _globals, _heap, threads = canonicalize(*state)
    for original, result in zip(state[2], threads):
        assert result[0] == original[0]
        assert result[1] == original[1]
        assert result[3] == original[3]
