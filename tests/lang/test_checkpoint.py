"""Checkpoint / resume tests: bit-identical results, fingerprint guard.

The acceptance criterion for the robustness PR: interrupt an exploration
with a budget, resume from the checkpoint, and obtain a FrozenLTS whose
``.aut`` dump is byte-for-byte identical to an uninterrupted run -- on
at least two corpus objects.
"""

import pickle

import pytest

from repro.core.aut import dumps_aut
from repro.lang import (
    ClientConfig,
    StreamingExplorer,
    explore,
)
from repro.lang.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointError,
    CheckpointMismatch,
    CheckpointSink,
    fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.lang.values import Ref
from repro.objects import get
from repro.util.budget import BudgetExhausted, RunBudget


def _bench_config(key, threads=2, ops=2):
    bench = get(key)
    program = bench.build(threads)
    config = ClientConfig(
        num_threads=threads,
        ops_per_thread=ops,
        workload=bench.default_workload(),
    )
    return program, config


def _interrupt_then_resume(key, tmp_path, max_states=400):
    """Explore with a state cap, checkpoint on exhaustion, then resume."""
    program, config = _bench_config(key)
    full = explore(program, config)

    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=max_states,
    )
    path = str(tmp_path / f"{key}.ckpt")
    sink = CheckpointSink(path, interval_seconds=0.0)
    with pytest.raises(BudgetExhausted):
        explore(program, capped, checkpoint=sink)
    assert sink.saves > 0

    resumed = explore(program, config, resume=load_checkpoint(path))
    return full, resumed


@pytest.mark.parametrize("key", ["treiber", "ms_queue"])
def test_resume_is_bit_identical(key, tmp_path):
    full, resumed = _interrupt_then_resume(key, tmp_path)
    assert dumps_aut(full) == dumps_aut(resumed)


def test_resume_after_deadline_exhaustion(tmp_path):
    program, config = _bench_config("treiber")
    full = explore(program, config)
    path = str(tmp_path / "deadline.ckpt")
    with pytest.raises(BudgetExhausted) as exc:
        explore(
            program, config,
            budget=RunBudget(deadline_seconds=0.0),
            checkpoint=CheckpointSink(path, interval_seconds=0.0),
        )
    assert exc.value.reason == "deadline"
    resumed = explore(program, config, resume=load_checkpoint(path))
    assert dumps_aut(full) == dumps_aut(resumed)


def test_fingerprint_excludes_max_states():
    program, config = _bench_config("treiber")
    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=123,
    )
    assert fingerprint(program, config) == fingerprint(program, capped)


def test_fingerprint_mismatch_rejected(tmp_path):
    program, config = _bench_config("treiber")
    path = str(tmp_path / "wrong.ckpt")
    sink = CheckpointSink(path, interval_seconds=0.0)
    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=200,
    )
    with pytest.raises(BudgetExhausted):
        explore(program, capped, checkpoint=sink)

    other_program, other_config = _bench_config("ms_queue")
    with pytest.raises(CheckpointMismatch):
        explore(other_program, other_config, resume=load_checkpoint(path))


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "garbage.ckpt"
    path.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(path))


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "schema.ckpt"
    cp = Checkpoint(fingerprint={}, builder=None, frontier=[])
    with open(path, "wb") as handle:
        pickle.dump({"schema": "repro.checkpoint/v0", "checkpoint": cp}, handle)
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(str(path))
    assert CHECKPOINT_SCHEMA in str(exc.value)


def test_save_is_atomic(tmp_path):
    # No temporary droppings left next to the checkpoint after a save.
    path = tmp_path / "atomic.ckpt"
    cp = Checkpoint(fingerprint={"k": 1}, builder=None, frontier=[])
    save_checkpoint(str(path), cp)
    assert [p.name for p in tmp_path.iterdir()] == ["atomic.ckpt"]
    assert load_checkpoint(str(path)).fingerprint == {"k": 1}


# ----------------------------------------------------------------------
# streaming <-> classic checkpoint interop (the on-the-fly refactor must
# not fork the checkpoint format: a run interrupted mid-stream resumes
# bit-identically from/into the classic explorer, both directions)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("key", ["treiber", "ms_queue"])
def test_streaming_snapshot_resumes_in_classic_explorer(key, tmp_path):
    # Interrupt a StreamingExplorer mid-stream via an explicit snapshot,
    # then hand the saved checkpoint to the classic explore() wrapper.
    program, config = _bench_config(key)
    full = explore(program, config)

    explorer = StreamingExplorer(program, config)
    for _ in range(50):
        assert explorer.expand_next() is not None
    path = str(tmp_path / f"{key}.stream.ckpt")
    save_checkpoint(path, explorer.snapshot())

    resumed = explore(program, config, resume=load_checkpoint(path))
    assert dumps_aut(full) == dumps_aut(resumed)


@pytest.mark.parametrize("key", ["treiber", "ms_queue"])
def test_classic_checkpoint_resumes_in_streaming_explorer(key, tmp_path):
    # The reverse direction: a checkpoint written by a classic capped
    # run is picked up by a StreamingExplorer, which drains the rest.
    program, config = _bench_config(key)
    full = explore(program, config)

    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=400,
    )
    path = str(tmp_path / f"{key}.classic.ckpt")
    sink = CheckpointSink(path, interval_seconds=0.0)
    with pytest.raises(BudgetExhausted):
        explore(program, capped, checkpoint=sink)
    assert sink.saves > 0

    explorer = StreamingExplorer(
        program, config, resume=load_checkpoint(path)
    )
    explorer.drain()
    assert dumps_aut(full) == dumps_aut(explorer.freeze())


def test_streaming_exhaustion_checkpoint_resumes_both_ways(tmp_path):
    # A streaming run interrupted by its own state cap must leave a
    # checkpoint that either explorer can finish from.
    program, config = _bench_config("treiber")
    full = explore(program, config)
    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=400,
    )
    path = str(tmp_path / "stream-exhausted.ckpt")
    explorer = StreamingExplorer(
        program, capped,
        checkpoint=CheckpointSink(path, interval_seconds=0.0),
    )
    with pytest.raises(BudgetExhausted):
        explorer.drain()

    classic = explore(program, config, resume=load_checkpoint(path))
    streaming = StreamingExplorer(
        program, config, resume=load_checkpoint(path)
    )
    streaming.drain()
    assert dumps_aut(full) == dumps_aut(classic)
    assert dumps_aut(full) == dumps_aut(streaming.freeze())


def test_ref_pickle_round_trip():
    # The tuple-subclass default would rebuild Ref(("ref", 3)); the
    # checkpoint format relies on references surviving pickling intact.
    ref = Ref(3)
    clone = pickle.loads(pickle.dumps(ref))
    assert clone == ref
    assert type(clone) is Ref
    assert clone.index == 3


def test_checkpoint_sink_throttles(tmp_path):
    sink = CheckpointSink(str(tmp_path / "t.ckpt"), interval_seconds=3600.0)
    cp = Checkpoint(fingerprint={}, builder=None, frontier=[])
    assert sink.maybe_save(cp) is True   # first call always saves
    assert sink.maybe_save(cp) is False  # within the interval
    assert sink.saves == 1


# ----------------------------------------------------------------------
# torn writes and opportunistic (quarantining) loads
# ----------------------------------------------------------------------

def _real_checkpoint_bytes(tmp_path):
    """A genuine on-disk checkpoint, for truncation experiments."""
    program, config = _bench_config("treiber")
    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=200,
    )
    path = tmp_path / "whole.ckpt"
    with pytest.raises(BudgetExhausted):
        explore(program, capped,
                checkpoint=CheckpointSink(str(path), interval_seconds=0.0))
    return path.read_bytes()


@pytest.mark.parametrize("keep", [1, 17, 0.5])
def test_torn_checkpoint_raises_checkpoint_error(keep, tmp_path):
    # Truncate a real checkpoint at several points (1 byte, a prefix,
    # half the file): every torn image must surface as CheckpointError,
    # never a raw pickle exception.
    data = _real_checkpoint_bytes(tmp_path)
    cut = keep if isinstance(keep, int) else int(len(data) * keep)
    torn = tmp_path / "torn.ckpt"
    torn.write_bytes(data[:cut])
    with pytest.raises(CheckpointError):
        load_checkpoint(str(torn))


def test_quarantine_load_returns_none_for_missing_file(tmp_path):
    from repro.lang.checkpoint import load_checkpoint_or_quarantine
    assert load_checkpoint_or_quarantine(str(tmp_path / "absent.ckpt")) is None
    assert list(tmp_path.iterdir()) == []  # nothing quarantined


def test_quarantine_load_moves_torn_file_aside(tmp_path):
    from repro.lang.checkpoint import load_checkpoint_or_quarantine
    data = _real_checkpoint_bytes(tmp_path)
    torn = tmp_path / "torn.ckpt"
    torn.write_bytes(data[:len(data) // 2])
    assert load_checkpoint_or_quarantine(str(torn)) is None
    assert not torn.exists()
    quarantined = tmp_path / "torn.ckpt.corrupt"
    assert quarantined.exists()
    # The evidence is preserved byte-for-byte for debugging.
    assert quarantined.read_bytes() == data[:len(data) // 2]


def test_quarantine_load_passes_good_checkpoints_through(tmp_path):
    from repro.lang.checkpoint import load_checkpoint_or_quarantine
    program, config = _bench_config("treiber")
    full = explore(program, config)
    capped = ClientConfig(
        num_threads=config.num_threads,
        ops_per_thread=config.ops_per_thread,
        workload=config.workload,
        max_states=200,
    )
    path = tmp_path / "good.ckpt"
    with pytest.raises(BudgetExhausted):
        explore(program, capped,
                checkpoint=CheckpointSink(str(path), interval_seconds=0.0))
    checkpoint = load_checkpoint_or_quarantine(str(path))
    assert checkpoint is not None
    resumed = explore(program, config, resume=checkpoint)
    assert dumps_aut(full) == dumps_aut(resumed)
