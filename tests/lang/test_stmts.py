"""Structured-statement compiler tests."""

import pytest

from repro.lang import (
    Branch,
    Break,
    Continue,
    Goto,
    If,
    Jump,
    Label,
    LocalAssign,
    ModelError,
    Return,
    While,
    compile_body,
)


def run_straightline(ops, env):
    """Execute local-only compiled ops for testing control flow."""
    from repro.lang.semantics import execute
    from repro.lang import Method, ObjectProgram

    prog = ObjectProgram("t", methods=[Method("m", body=[Return(None)])])
    pc = 0
    trace = []
    fuel = 200
    while pc < len(ops) and fuel:
        fuel -= 1
        outcome = execute(prog, ops[pc], (), (), env)[0]
        if outcome[0] == "ret":
            return env, outcome[3], trace
        env = outcome[3]
        target = outcome[4]
        trace.append(pc)
        pc = pc + 1 if target < 0 else target
    return env, None, trace


def test_if_without_else():
    ops = compile_body([
        If(lambda L: L["x"] > 0, [LocalAssign(y=1)]),
        Return("y"),
    ])
    _, ret, _ = run_straightline(ops, {"x": 1, "y": 0})
    assert ret == 1
    _, ret, _ = run_straightline(ops, {"x": -1, "y": 0})
    assert ret == 0


def test_if_with_else():
    ops = compile_body([
        If("x", [LocalAssign(y="pos")], [LocalAssign(y="neg")]),
        Return("y"),
    ])
    assert run_straightline(ops, {"x": True, "y": None})[1] == "pos"
    assert run_straightline(ops, {"x": False, "y": None})[1] == "neg"


def test_while_loop():
    ops = compile_body([
        While(lambda L: L["i"] < 5, [
            LocalAssign(i=lambda L: L["i"] + 1, acc=lambda L: L["acc"] + L["i"]),
        ]),
        Return("acc"),
    ])
    assert run_straightline(ops, {"i": 0, "acc": 0})[1] == 0 + 1 + 2 + 3 + 4


def test_break_and_continue():
    ops = compile_body([
        While(True, [
            LocalAssign(i=lambda L: L["i"] + 1),
            If(lambda L: L["i"] % 2 == 0, [Continue()]),
            If(lambda L: L["i"] > 5, [Break()]),
        ]),
        Return("i"),
    ])
    assert run_straightline(ops, {"i": 0})[1] == 7


def test_nested_loops_break_targets_inner():
    ops = compile_body([
        While(lambda L: L["outer"] < 2, [
            LocalAssign(outer=lambda L: L["outer"] + 1),
            While(True, [
                LocalAssign(inner=lambda L: L["inner"] + 1),
                Break(),
            ]),
        ]),
        Return("inner"),
    ])
    assert run_straightline(ops, {"outer": 0, "inner": 0})[1] == 2


def test_goto_and_label():
    ops = compile_body([
        Label("top"),
        LocalAssign(i=lambda L: L["i"] + 1),
        If(lambda L: L["i"] < 3, [Goto("top")]),
        Return("i"),
    ])
    assert run_straightline(ops, {"i": 0})[1] == 3


def test_errors():
    with pytest.raises(ModelError):
        compile_body([Break()])
    with pytest.raises(ModelError):
        compile_body([Continue()])
    with pytest.raises(ModelError):
        compile_body([Goto("nowhere")])
    with pytest.raises(ModelError):
        compile_body([Label("x"), Label("x")])
    with pytest.raises(ModelError):
        compile_body(["not a statement"])


def test_compiled_branch_targets_resolved():
    ops = compile_body([
        While(lambda L: L["x"], [LocalAssign(x=False)]),
        Return(None),
    ])
    for op in ops:
        if isinstance(op, Branch):
            assert op.on_true >= 0 and op.on_false >= 0
        if isinstance(op, Jump):
            assert op.target >= 0


def test_statement_line_annotation_flows_to_branch():
    ops = compile_body([
        While(lambda L: True, [LocalAssign(x=1)]).at("L3"),
        Return(None),
    ])
    branches = [op for op in ops if isinstance(op, Branch)]
    assert branches[0].line == "L3"
