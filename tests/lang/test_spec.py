"""Linearizable specification generator tests (Section II.C)."""

import pytest

from repro.core import TAU_ID, tau_cycle_states
from repro.core.aut import dumps_aut
from repro.lang import (
    EMPTY,
    ClientConfig,
    SpecObject,
    explore,
    queue_spec,
    register_spec,
    set_spec,
    spec_lts,
    stack_spec,
)
from repro.lang.checkpoint import (
    CheckpointMismatch,
    CheckpointSink,
    load_checkpoint,
    spec_fingerprint,
)
from repro.util.budget import BudgetExhausted, RunBudget


def labels_of(lts):
    return {lts.action_labels[aid] for _s, aid, _d in lts.transitions()}


def test_method_execution_is_three_steps():
    # One thread, one op: call, atomic tau, ret -> exactly 4 states.
    lts = spec_lts(queue_spec(), 1, 1, [("enq", (1,))])
    assert lts.num_states == 4
    kinds = [lts.action_labels[aid][0] if aid != TAU_ID else "tau"
             for _s, aid, _d in lts.transitions()]
    assert sorted(kinds) == ["call", "ret", "tau"]


def test_queue_spec_fifo():
    def run(*calls):
        state = ()
        out = []
        spec = queue_spec()
        for m, args in calls:
            results = spec.method(m)(state, args)
            assert len(results) == 1
            state, value = results[0]
            out.append(value)
        return out

    assert run(("enq", (1,)), ("enq", (2,)), ("deq", ()), ("deq", ()), ("deq", ())) \
        == [None, None, 1, 2, EMPTY]


def test_stack_spec_lifo():
    spec = stack_spec()
    state = ()
    state, _ = spec.method("push")(state, (1,))[0]
    state, _ = spec.method("push")(state, (2,))[0]
    state, v = spec.method("pop")(state, ())[0]
    assert v == 2
    state, v = spec.method("pop")(state, ())[0]
    assert v == 1
    _, v = spec.method("pop")(state, ())[0]
    assert v == EMPTY


def test_set_spec_semantics():
    spec = set_spec()
    state = frozenset()
    state, added = spec.method("add")(state, (1,))[0]
    assert added is True
    state, added = spec.method("add")(state, (1,))[0]
    assert added is False
    _, found = spec.method("contains")(state, (1,))[0]
    assert found is True
    state, removed = spec.method("remove")(state, (1,))[0]
    assert removed is True
    _, removed = spec.method("remove")(state, (1,))[0]
    assert removed is False


def test_register_spec_newcas():
    spec = register_spec(0)
    state, prior = spec.method("newcas")(0, (0, 5))[0]
    assert (state, prior) == (5, 0)
    state, prior = spec.method("newcas")(5, (0, 7))[0]
    assert (state, prior) == (5, 5)  # mismatch: unchanged, prior returned


def test_spec_lts_is_lock_free():
    lts = spec_lts(queue_spec(), 2, 2, [("enq", (1,)), ("deq", ())])
    assert tau_cycle_states(lts) == []


def test_spec_lts_interleaving_labels():
    lts = spec_lts(stack_spec(), 2, 1, [("push", (1,)), ("pop", ())])
    labels = labels_of(lts)
    assert ("call", 1, "push", (1,)) in labels
    assert ("ret", 2, "pop", EMPTY) in labels
    assert ("ret", 2, "pop", 1) in labels


def test_nondeterministic_spec_supported():
    flaky = SpecObject(
        "flaky", initial=0,
        methods={"flip": lambda state, args: [(0, "heads"), (1, "tails")]},
    )
    lts = spec_lts(flaky, 1, 1, [("flip", ())])
    labels = labels_of(lts)
    assert ("ret", 1, "flip", "heads") in labels
    assert ("ret", 1, "flip", "tails") in labels


# ----------------------------------------------------------------------
# checkpoint / resume of specification generation
# ----------------------------------------------------------------------

_WORKLOAD = [("enq", (1,)), ("deq", ())]


def test_spec_checkpoint_resume_bit_identical(tmp_path):
    full = spec_lts(queue_spec(), 2, 2, _WORKLOAD)
    path = str(tmp_path / "spec.ckpt")
    with pytest.raises(BudgetExhausted):
        spec_lts(
            queue_spec(), 2, 2, _WORKLOAD, max_states=40,
            checkpoint=CheckpointSink(path, interval_seconds=0.0),
        )
    resumed = spec_lts(
        queue_spec(), 2, 2, _WORKLOAD, resume=load_checkpoint(path)
    )
    assert dumps_aut(resumed.freeze()) == dumps_aut(full.freeze())


def test_spec_checkpoint_resume_after_deadline(tmp_path):
    full = spec_lts(queue_spec(), 2, 2, _WORKLOAD)
    path = str(tmp_path / "deadline.ckpt")
    with pytest.raises(BudgetExhausted) as exc:
        spec_lts(
            queue_spec(), 2, 2, _WORKLOAD,
            budget=RunBudget(deadline_seconds=0.0),
            checkpoint=CheckpointSink(path, interval_seconds=0.0),
        )
    assert exc.value.reason == "deadline"
    assert exc.value.phase == "spec"
    resumed = spec_lts(
        queue_spec(), 2, 2, _WORKLOAD, resume=load_checkpoint(path)
    )
    assert dumps_aut(resumed.freeze()) == dumps_aut(full.freeze())


def test_spec_fingerprint_rejects_config_drift(tmp_path):
    path = str(tmp_path / "drift.ckpt")
    with pytest.raises(BudgetExhausted):
        spec_lts(
            queue_spec(), 2, 2, _WORKLOAD, max_states=40,
            checkpoint=CheckpointSink(path, interval_seconds=0.0),
        )
    with pytest.raises(CheckpointMismatch):
        spec_lts(
            queue_spec(), 2, 3, _WORKLOAD, resume=load_checkpoint(path)
        )


def test_spec_fingerprint_distinct_from_impl(tmp_path):
    # A spec checkpoint must never resume an implementation exploration
    # (and vice versa): the fingerprint carries a kind marker.
    from repro.objects import get

    bench = get("treiber")
    program = bench.build(2)
    config = ClientConfig(
        num_threads=2, ops_per_thread=2,
        workload=bench.default_workload(), max_states=200,
    )
    path = str(tmp_path / "impl.ckpt")
    with pytest.raises(BudgetExhausted):
        explore(program, config,
                checkpoint=CheckpointSink(path, interval_seconds=0.0))
    with pytest.raises(CheckpointMismatch):
        spec_lts(queue_spec(), 2, 2, _WORKLOAD, resume=load_checkpoint(path))


def test_spec_fingerprint_is_deterministic():
    one = spec_fingerprint(queue_spec(), 2, 2, _WORKLOAD)
    two = spec_fingerprint(queue_spec(), 2, 2, _WORKLOAD)
    assert one == two
    assert one["kind"] == "spec"
    assert one != spec_fingerprint(queue_spec(), 3, 2, _WORKLOAD)
    assert one != spec_fingerprint(stack_spec(), 2, 2,
                                   [("push", (1,)), ("pop", ())])
