"""Linearizable specification generator tests (Section II.C)."""

from repro.core import TAU_ID, tau_cycle_states
from repro.lang import (
    EMPTY,
    SpecObject,
    queue_spec,
    register_spec,
    set_spec,
    spec_lts,
    stack_spec,
)


def labels_of(lts):
    return {lts.action_labels[aid] for _s, aid, _d in lts.transitions()}


def test_method_execution_is_three_steps():
    # One thread, one op: call, atomic tau, ret -> exactly 4 states.
    lts = spec_lts(queue_spec(), 1, 1, [("enq", (1,))])
    assert lts.num_states == 4
    kinds = [lts.action_labels[aid][0] if aid != TAU_ID else "tau"
             for _s, aid, _d in lts.transitions()]
    assert sorted(kinds) == ["call", "ret", "tau"]


def test_queue_spec_fifo():
    def run(*calls):
        state = ()
        out = []
        spec = queue_spec()
        for m, args in calls:
            results = spec.method(m)(state, args)
            assert len(results) == 1
            state, value = results[0]
            out.append(value)
        return out

    assert run(("enq", (1,)), ("enq", (2,)), ("deq", ()), ("deq", ()), ("deq", ())) \
        == [None, None, 1, 2, EMPTY]


def test_stack_spec_lifo():
    spec = stack_spec()
    state = ()
    state, _ = spec.method("push")(state, (1,))[0]
    state, _ = spec.method("push")(state, (2,))[0]
    state, v = spec.method("pop")(state, ())[0]
    assert v == 2
    state, v = spec.method("pop")(state, ())[0]
    assert v == 1
    _, v = spec.method("pop")(state, ())[0]
    assert v == EMPTY


def test_set_spec_semantics():
    spec = set_spec()
    state = frozenset()
    state, added = spec.method("add")(state, (1,))[0]
    assert added is True
    state, added = spec.method("add")(state, (1,))[0]
    assert added is False
    _, found = spec.method("contains")(state, (1,))[0]
    assert found is True
    state, removed = spec.method("remove")(state, (1,))[0]
    assert removed is True
    _, removed = spec.method("remove")(state, (1,))[0]
    assert removed is False


def test_register_spec_newcas():
    spec = register_spec(0)
    state, prior = spec.method("newcas")(0, (0, 5))[0]
    assert (state, prior) == (5, 0)
    state, prior = spec.method("newcas")(5, (0, 7))[0]
    assert (state, prior) == (5, 5)  # mismatch: unchanged, prior returned


def test_spec_lts_is_lock_free():
    lts = spec_lts(queue_spec(), 2, 2, [("enq", (1,)), ("deq", ())])
    assert tau_cycle_states(lts) == []


def test_spec_lts_interleaving_labels():
    lts = spec_lts(stack_spec(), 2, 1, [("push", (1,)), ("pop", ())])
    labels = labels_of(lts)
    assert ("call", 1, "push", (1,)) in labels
    assert ("ret", 2, "pop", EMPTY) in labels
    assert ("ret", 2, "pop", 1) in labels


def test_nondeterministic_spec_supported():
    flaky = SpecObject(
        "flaky", initial=0,
        methods={"flip": lambda state, args: [(0, "heads"), (1, "tails")]},
    )
    lts = spec_lts(flaky, 1, 1, [("flip", ())])
    labels = labels_of(lts)
    assert ("ret", 1, "flip", "heads") in labels
    assert ("ret", 1, "flip", "tails") in labels
