"""Most-general-client explorer tests."""

import pytest

from repro.core import TAU_ID, tau_cycle_states
from repro.lang import (
    Alloc,
    AtomicBlock,
    ClientConfig,
    FetchAddGlobal,
    If,
    LocalAssign,
    Method,
    ModelError,
    ObjectProgram,
    ReadGlobal,
    Return,
    StateExplosion,
    While,
    WriteGlobal,
    explore,
    uniform_workload,
)


def counter_program():
    """inc() with a non-atomic read/write pair (racy by design)."""
    return ObjectProgram(
        "counter",
        methods=[
            Method("inc", locals_={"x": None}, body=[
                ReadGlobal("x", "C").at("L1"),
                WriteGlobal("C", lambda L: L["x"] + 1).at("L2"),
                Return("x").at("L3"),
            ]),
        ],
        globals_={"C": 0},
    )


def atomic_counter_program():
    return ObjectProgram(
        "atomic-counter",
        methods=[
            Method("inc", locals_={"x": None}, body=[
                FetchAddGlobal("x", "C", 1).at("L1"),
                Return("x").at("L2"),
            ]),
        ],
        globals_={"C": 0},
    )


WL = [("inc", ())]


def labels_of(lts):
    return {lts.action_labels[aid] for _s, aid, _d in lts.transitions()}


def test_call_and_ret_labels_are_one_based():
    lts = explore(counter_program(), ClientConfig(2, 1, WL))
    labels = labels_of(lts)
    assert ("call", 1, "inc", ()) in labels
    assert ("call", 2, "inc", ()) in labels
    assert ("ret", 1, "inc", 0) in labels


def test_racy_counter_loses_an_update():
    # Two overlapping incs can both read 0 -> both return 0.
    lts = explore(counter_program(), ClientConfig(2, 1, WL))
    labels = labels_of(lts)
    assert ("ret", 1, "inc", 0) in labels
    assert ("ret", 2, "inc", 0) in labels
    # Sequential execution also possible: someone returns 1.
    assert ("ret", 1, "inc", 1) in labels


def test_atomic_counter_returns_are_distinct():
    lts = explore(atomic_counter_program(), ClientConfig(2, 1, WL))
    labels = labels_of(lts)
    assert ("ret", 1, "inc", 0) in labels and ("ret", 1, "inc", 1) in labels
    # fetch-add cannot duplicate a ticket: both threads returning 0 would
    # require both to see C==0 atomically -- look for any trace with two
    # ret ... 0 labels: the LTS cannot contain a path with both.
    # (checked structurally below: from init, after (ret,t,inc,0) by one
    # thread no (ret,t',inc,0) is reachable)
    from repro.core import make_lts
    # walk: collect states reachable after a (ret,*,inc,0)
    ret0 = {aid for aid, lbl in enumerate(lts.action_labels)
            if isinstance(lbl, tuple) and lbl[0] == "ret" and lbl[3] == 0}
    after = set()
    for s, aid, d in lts.transitions():
        if aid in ret0:
            after.add(d)
    # BFS from those states: no further ret..0
    seen = set(after)
    stack = list(after)
    while stack:
        s = stack.pop()
        for aid, d in lts.successors(s):
            assert aid not in ret0, "two zero tickets in one execution"
            if d not in seen:
                seen.add(d)
                stack.append(d)


def test_ops_budget_bounds_invocations():
    lts = explore(counter_program(), ClientConfig(1, 3, WL))
    # Max return value is 2 (three sequential incs return 0,1,2).
    rets = [lbl for lbl in labels_of(lts) if lbl[0] == "ret"]
    assert max(lbl[3] for lbl in rets) == 2


def test_local_fusion_removes_local_states():
    # A method with many local steps between shared accesses: the local
    # chain must not create extra states.
    chatty = ObjectProgram(
        "chatty",
        methods=[
            Method("m", locals_={"a": 0, "b": 0, "c": 0}, body=[
                LocalAssign(a=1),
                LocalAssign(b=lambda L: L["a"] + 1),
                LocalAssign(c=lambda L: L["b"] + 1),
                ReadGlobal("a", "X"),
                LocalAssign(b=lambda L: L["a"] * 2),
                Return("b"),
            ]),
        ],
        globals_={"X": 21},
    )
    lts = explore(chatty, ClientConfig(1, 1, [("m", ())]))
    # states: init, in-method-before-read, after-read, done = 4
    assert lts.num_states == 4
    assert ("ret", 1, "m", 42) in labels_of(lts)


def test_local_infinite_loop_surfaces_as_tau_cycle():
    spinner = ObjectProgram(
        "spinner",
        methods=[
            Method("spin", locals_={"x": 0}, body=[
                While(True, [LocalAssign(x=lambda L: L["x"] % 2)]),
                Return(None),
            ]),
        ],
        globals_={},
    )
    lts = explore(spinner, ClientConfig(1, 1, [("spin", ())]))
    assert tau_cycle_states(lts)


def test_annotations_carry_thread_and_line():
    lts = explore(counter_program(), ClientConfig(2, 1, WL))
    annotations = {
        ann for _s, aid, _d, ann in lts.transitions_with_annotations()
        if aid == TAU_ID
    }
    assert "t1.L1" in annotations
    assert "t2.L2" in annotations


def test_max_states_raises():
    with pytest.raises(StateExplosion):
        explore(counter_program(), ClientConfig(2, 2, WL, max_states=10))


def test_state_explosion_is_budget_exhaustion():
    # Budget-aware callers catch the whole taxonomy with one except.
    from repro.util.budget import BudgetExhausted

    with pytest.raises(BudgetExhausted) as exc:
        explore(counter_program(), ClientConfig(2, 2, WL, max_states=10))
    assert exc.value.reason == "states"
    assert exc.value.phase == "explore"
    assert exc.value.progress["states"] > 10


def test_default_state_cap_and_opt_out():
    from repro.lang.client import DEFAULT_MAX_STATES

    # None means the documented safety net, 0 opts out, positive wins.
    assert ClientConfig(2, 1, WL).effective_max_states() == DEFAULT_MAX_STATES
    assert ClientConfig(2, 1, WL, max_states=0).effective_max_states() is None
    assert ClientConfig(2, 1, WL, max_states=7).effective_max_states() == 7
    # The opt-out really is unbounded for a system of any explorable size.
    lts = explore(counter_program(), ClientConfig(2, 2, WL, max_states=0))
    assert lts.num_states > 0


def test_bad_workloads_rejected():
    with pytest.raises(ModelError):
        explore(counter_program(), ClientConfig(2, 1, []))
    with pytest.raises(ModelError):
        explore(counter_program(), ClientConfig(2, 1, [("nope", ())]))
    with pytest.raises(ModelError):
        explore(counter_program(), ClientConfig(2, 1, [("inc", [1])]))


def test_method_must_end_in_return():
    bad = ObjectProgram(
        "bad",
        methods=[Method("m", body=[LocalAssign(x=1)])],
        globals_={},
    )
    with pytest.raises(ModelError):
        explore(bad, ClientConfig(1, 1, [("m", ())]))


def test_uniform_workload_flattens():
    wl = uniform_workload({"push": [(1,), (2,)], "pop": [()]})
    assert ("push", (1,)) in wl and ("pop", ()) in wl
    assert len(wl) == 3


def test_atomic_block_is_one_step():
    prog = ObjectProgram(
        "ab",
        methods=[
            Method("m", locals_={"x": None}, body=[
                AtomicBlock([
                    ReadGlobal("x", "X"),
                    WriteGlobal("X", lambda L: L["x"] + 1),
                ]),
                Return("x"),
            ]),
        ],
        globals_={"X": 0},
    )
    lts = explore(prog, ClientConfig(2, 1, [("m", ())]))
    # The atomic increment cannot be lost: some execution returns 1 and
    # in NO execution do both threads return 0.
    labels = labels_of(lts)
    assert ("ret", 1, "m", 1) in labels or ("ret", 2, "m", 1) in labels
    spec_like = explore(atomic_counter_program(), ClientConfig(2, 1, WL))
    from repro.core import compare_branching
    mapped = lts.relabel(
        lambda lbl: lbl if lbl == ("tau",) else (lbl[0], lbl[1], "inc", lbl[3])
    )
    assert compare_branching(mapped, spec_like).equivalent


def test_pending_return_separates_decision_from_return():
    prog = ObjectProgram(
        "pr",
        methods=[
            Method("m", locals_={"x": None}, body=[
                AtomicBlock([
                    ReadGlobal("x", "X"),
                    If(lambda L: L["x"] == 0, [Return("x")]),
                ]),
                Return(7),
            ]),
        ],
        globals_={"X": 0},
    )
    lts = explore(prog, ClientConfig(1, 1, [("m", ())]))
    # call -> tau (atomic decision) -> ret : 4 states.
    assert lts.num_states == 4
    tau_count = sum(1 for _s, aid, _d in lts.transitions() if aid == TAU_ID)
    assert tau_count == 1
