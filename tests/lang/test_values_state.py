"""Value domain and state canonicalization tests."""

from repro.lang.values import EMPTY, NULL, Ref, Symbol, is_ref
from repro.lang.state import canonicalize, free_node_indices


def test_ref_is_not_an_int():
    assert Ref(3) != 3
    assert hash(Ref(3)) != hash(3) or Ref(3) != 3  # no value collision
    assert is_ref(Ref(0))
    assert not is_ref(0)
    assert not is_ref(("ref", 0)) or True  # plain tuples never built by programs


def test_ref_identity():
    assert Ref(2) == Ref(2)
    assert Ref(2) != Ref(3)
    assert Ref(5).index == 5
    assert repr(Ref(5)) == "Ref(5)"


def test_symbols():
    assert EMPTY == "EMPTY"
    assert isinstance(EMPTY, Symbol)
    assert NULL is None


def _idle(budget=1):
    return (-1, -1, (), budget)


def test_canonicalize_renames_in_bfs_order():
    # Heap: node0 <- node1 <- global; canonical order must start from
    # the global root, so node1 becomes 0 and node0 becomes 1.
    heap = ((False, "a", None), (False, "b", Ref(0)))
    globals_ = (Ref(1),)
    g, h, t = canonicalize(globals_, heap, (_idle(),))
    assert g == (Ref(0),)
    assert h[0][1] == "b" and h[0][2] == Ref(1)
    assert h[1][1] == "a"


def test_canonicalize_collects_garbage():
    heap = ((False, "live", None), (False, "leaked", None))
    g, h, t = canonicalize((Ref(0),), heap, (_idle(),))
    assert len(h) == 1
    assert h[0][1] == "live"


def test_canonicalize_keeps_freed_but_referenced():
    heap = ((True, "freed", None),)
    g, h, t = canonicalize((Ref(0),), heap, (_idle(),))
    assert len(h) == 1
    assert h[0][0] is True
    assert free_node_indices(h) == [0]


def test_canonicalize_drops_freed_unreferenced():
    heap = ((True, "freed", None),)
    g, h, t = canonicalize((None,), heap, (_idle(),))
    assert h == ()


def test_canonicalize_rewrites_nested_tuples():
    # Marked-pointer words (ref, flag) and array globals must be traversed.
    heap = ((False, 1, (None, False)), (False, 2, (Ref(0), True)))
    globals_ = ((Ref(1), False),)
    g, h, t = canonicalize(globals_, heap, (_idle(),))
    assert g == ((Ref(0), False),)
    assert h[0][2] == (Ref(1), True)


def test_canonicalize_thread_locals_are_roots():
    heap = ((False, "x", None),)
    threads = ((0, 3, (Ref(0), 7), 1),)
    g, h, t = canonicalize((), heap, threads)
    assert len(h) == 1
    assert t[0][2] == (Ref(0), 7)


def test_canonicalize_identical_modulo_allocation_order():
    # Same logical structure built in two different heap orders must
    # produce identical canonical states (the symmetry reduction).
    heap_a = ((False, "n1", Ref(1)), (False, "n2", None))
    heap_b = ((False, "n2", None), (False, "n1", Ref(0)))
    key_a = canonicalize((Ref(0),), heap_a, (_idle(),))
    key_b = canonicalize((Ref(1),), heap_b, (_idle(),))
    assert key_a == key_b


def test_canonicalize_empty():
    key = canonicalize((), (), (_idle(),))
    assert key == ((), (), (_idle(),))
