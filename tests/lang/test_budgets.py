"""Per-thread operation budgets (used by the Fig. 6 scenario benches)."""

import pytest

from repro.lang import ClientConfig, Method, ObjectProgram, ReadGlobal, Return, explore
from repro.lang import spec_lts, queue_spec


def tiny_program():
    return ObjectProgram(
        "tiny",
        methods=[Method("m", locals_={"x": None}, body=[
            ReadGlobal("x", "G").at("L1"),
            Return("x").at("L2"),
        ])],
        globals_={"G": 7},
    )


WL = [("m", ())]


def count_calls_per_thread(lts):
    counts = {}
    for _s, aid, _d in lts.transitions():
        label = lts.action_labels[aid]
        if isinstance(label, tuple) and label[0] == "call":
            counts[label[1]] = counts.get(label[1], 0) + 1
    return counts


def test_uniform_budget_tuple_equivalent_to_int():
    a = explore(tiny_program(), ClientConfig(2, 2, WL))
    b = explore(tiny_program(), ClientConfig(2, (2, 2), WL))
    assert a.num_states == b.num_states
    assert a.num_transitions == b.num_transitions


def test_asymmetric_budget_limits_one_thread():
    lts = explore(tiny_program(), ClientConfig(2, (2, 0), WL))
    calls = count_calls_per_thread(lts)
    assert 1 in calls
    assert 2 not in calls          # thread 2 has no budget


def test_budget_length_mismatch_rejected():
    with pytest.raises(ValueError):
        explore(tiny_program(), ClientConfig(2, (2,), WL))


def test_max_return_depth_respects_asymmetric_budget():
    # Thread 1 can run 3 ops; thread 2 only 1: the longest execution has
    # exactly 4 call actions.
    lts = explore(tiny_program(), ClientConfig(2, (3, 1), WL))
    # Count maximal call-depth by DFS over call/ret edges.
    best = 0
    stack = [(lts.init, 0)]
    seen = {}
    while stack:
        state, depth = stack.pop()
        if seen.get(state, -1) >= depth:
            continue
        seen[state] = depth
        best = max(best, depth)
        for aid, dst in lts.successors(state):
            label = lts.action_labels[aid]
            is_call = isinstance(label, tuple) and label[0] == "call"
            stack.append((dst, depth + (1 if is_call else 0)))
    assert best == 4


def test_spec_lts_accepts_budget_tuple():
    wl = [("enq", (1,)), ("deq", ())]
    uniform = spec_lts(queue_spec(), 2, 1, wl)
    tupled = spec_lts(queue_spec(), 2, (1, 1), wl)
    assert uniform.num_states == tupled.num_states
    asym = spec_lts(queue_spec(), 2, (1, 0), wl)
    assert asym.num_states < uniform.num_states
