"""Operational semantics of the instruction set, op by op."""

import pytest

from repro.lang import (
    Alloc,
    Assume,
    AtomicBlock,
    CasField,
    CasGlobal,
    FetchAddGlobal,
    Free,
    If,
    LocalAssign,
    Lock,
    LockField,
    Method,
    ModelError,
    ObjectProgram,
    ReadField,
    ReadGlobal,
    Return,
    SwapField,
    Unlock,
    UnlockField,
    WriteField,
    WriteGlobal,
)
from repro.lang.semantics import execute
from repro.lang.values import Ref


def make_program(**globals_):
    return ObjectProgram(
        "test",
        methods=[Method("noop", body=[Return(None)])],
        globals_=globals_ or {"X": 0, "Arr": (1, 2, 3), "L": False},
        node_fields=["val", "next"],
    )


PROG = make_program()
G = PROG.initial_globals()           # (X, Arr, L)
HEAP = ((False, 10, None), (True, 20, None))
ENV = {"p": Ref(0), "q": Ref(1), "i": 1, "v": 42}


def only(outcomes):
    assert len(outcomes) == 1
    return outcomes[0]


def test_local_assign():
    kind, g, h, env, target = only(execute(PROG, LocalAssign(x=5, y="v"), G, HEAP, ENV))
    assert env["x"] == 5 and env["y"] == 42
    assert g is G and h is HEAP and target == -1
    assert "x" not in ENV  # no mutation of the input env


def test_read_write_global():
    kind, g, h, env, _ = only(execute(PROG, ReadGlobal("x", "X"), G, HEAP, ENV))
    assert env["x"] == 0
    kind, g, h, env, _ = only(execute(PROG, WriteGlobal("X", "v"), G, HEAP, ENV))
    assert g[0] == 42


def test_indexed_global():
    op = ReadGlobal("x", "Arr", index="i")
    _, g, h, env, _ = only(execute(PROG, op, G, HEAP, ENV))
    assert env["x"] == 2
    op = WriteGlobal("Arr", 99, index="i")
    _, g, h, env, _ = only(execute(PROG, op, G, HEAP, ENV))
    assert g[1] == (1, 99, 3)


def test_indexed_global_out_of_range():
    with pytest.raises(ModelError):
        execute(PROG, ReadGlobal("x", "Arr", index=7), G, HEAP, ENV)


def test_cas_global_success_and_failure():
    _, g, _h, env, _ = only(execute(PROG, CasGlobal("b", "X", 0, 5), G, HEAP, ENV))
    assert env["b"] is True and g[0] == 5
    _, g, _h, env, _ = only(execute(PROG, CasGlobal("b", "X", 1, 5), G, HEAP, ENV))
    assert env["b"] is False and g[0] == 0


def test_cas_global_indexed():
    op = CasGlobal("b", "Arr", 2, 7, index="i")
    _, g, _h, env, _ = only(execute(PROG, op, G, HEAP, ENV))
    assert env["b"] is True and g[1] == (1, 7, 3)


def test_fetch_add():
    _, g, _h, env, _ = only(execute(PROG, FetchAddGlobal("old", "X", 3), G, HEAP, ENV))
    assert env["old"] == 0 and g[0] == 3


def test_fetch_add_non_integer():
    with pytest.raises(ModelError):
        execute(PROG, FetchAddGlobal("old", "L", 1), G, HEAP, ENV)


def test_read_write_field():
    _, _g, h, env, _ = only(execute(PROG, ReadField("x", "p", "val"), G, HEAP, ENV))
    assert env["x"] == 10
    _, _g, h, env, _ = only(execute(PROG, WriteField("p", "val", 77), G, HEAP, ENV))
    assert h[0][1] == 77
    assert HEAP[0][1] == 10  # persistent heap untouched


def test_field_ops_reject_null_and_unknown():
    with pytest.raises(ModelError):
        execute(PROG, ReadField("x", None, "val"), G, HEAP, ENV)
    with pytest.raises(ModelError):
        execute(PROG, ReadField("x", "p", "nope"), G, HEAP, ENV)


def test_cas_field():
    _, _g, h, env, _ = only(
        execute(PROG, CasField("b", "p", "val", 10, 11), G, HEAP, ENV)
    )
    assert env["b"] is True and h[0][1] == 11
    _, _g, h, env, _ = only(
        execute(PROG, CasField("b", "p", "val", 999, 11), G, HEAP, ENV)
    )
    assert env["b"] is False and h[0][1] == 10


def test_swap_field():
    _, _g, h, env, _ = only(
        execute(PROG, SwapField("old", "p", "val", 0), G, HEAP, ENV)
    )
    assert env["old"] == 10 and h[0][1] == 0


def test_alloc_fresh_and_reuse():
    outcomes = execute(PROG, Alloc("n", val=1), G, HEAP, ENV)
    # One fresh allocation + one reuse (node 1 is free).
    assert len(outcomes) == 2
    fresh = outcomes[0]
    assert fresh[4] == -1
    assert fresh[3]["n"] == Ref(2)
    assert len(fresh[2]) == 3
    reuse = outcomes[1]
    assert reuse[3]["n"] == Ref(1)
    assert reuse[2][1] == (False, 1, None)


def test_alloc_unknown_field():
    with pytest.raises(ModelError):
        execute(PROG, Alloc("n", bogus=1), G, HEAP, ENV)


def test_free_and_double_free():
    _, _g, h, _env, _ = only(execute(PROG, Free("p"), G, HEAP, ENV))
    assert h[0][0] is True
    with pytest.raises(ModelError):
        execute(PROG, Free("q"), G, HEAP, ENV)  # q already free


def test_lock_blocks_and_acquires():
    _, g, _h, _env, _ = only(execute(PROG, Lock("L"), G, HEAP, ENV))
    assert g[2] is True
    assert execute(PROG, Lock("L"), g, HEAP, ENV) == []  # held: blocked
    _, g2, _h, _env, _ = only(execute(PROG, Unlock("L"), g, HEAP, ENV))
    assert g2[2] is False
    with pytest.raises(ModelError):
        execute(PROG, Unlock("L"), G, HEAP, ENV)  # unlock of free lock


def test_lock_field():
    prog = ObjectProgram(
        "t", methods=[Method("m", body=[Return(None)])],
        node_fields=["lock"], globals_={},
    )
    heap = ((False, False),)
    env = {"p": Ref(0)}
    _, _g, h, _env, _ = only(execute(prog, LockField("p", "lock"), (), heap, env))
    assert h[0][1] is True
    assert execute(prog, LockField("p", "lock"), (), h, env) == []
    _, _g, h2, _env, _ = only(execute(prog, UnlockField("p", "lock"), (), h, env))
    assert h2[0][1] is False


def test_assume():
    assert execute(PROG, Assume(lambda L: False), G, HEAP, ENV) == []
    outcome = only(execute(PROG, Assume(lambda L: L["v"] == 42), G, HEAP, ENV))
    assert outcome[0] == "step"


def test_return():
    kind, g, h, value = only(execute(PROG, Return("v"), G, HEAP, ENV))
    assert kind == "ret" and value == 42
    kind, _g, _h, value = only(execute(PROG, Return(None), G, HEAP, ENV))
    assert value is None


def test_atomic_block_runs_to_completion():
    block = AtomicBlock([
        ReadGlobal("x", "X"),
        WriteGlobal("X", lambda L: L["x"] + 1),
        WriteGlobal("X", lambda L: L["x"] + 2),
    ])
    _, g, _h, env, _ = only(execute(PROG, block, G, HEAP, ENV))
    assert g[0] == 2


def test_atomic_block_with_control_flow_and_return():
    block = AtomicBlock([
        ReadGlobal("x", "X"),
        If(lambda L: L["x"] == 0, [Return("x")]),
        WriteGlobal("X", 9),
    ])
    outcome = only(execute(PROG, block, G, HEAP, ENV))
    assert outcome[0] == "retpend" and outcome[3] == 0


def test_atomic_block_guarded_by_lock():
    block = AtomicBlock([Lock("L"), WriteGlobal("X", 1)])
    outcome = only(execute(PROG, block, G, HEAP, ENV))
    assert outcome[1][0] == 1 and outcome[1][2] is True
    held = (0, (1, 2, 3), True)
    assert execute(PROG, block, held, HEAP, ENV) == []  # whole block blocked


def test_atomic_block_nondeterminism_via_alloc():
    block = AtomicBlock([Alloc("n", val=5)])
    outcomes = execute(PROG, block, G, HEAP, ENV)
    assert len(outcomes) == 2  # fresh + reuse branch through the block


def test_atomic_block_fuel():
    from repro.lang import While

    block = AtomicBlock([While(True, [LocalAssign(x=1)])])
    with pytest.raises(ModelError):
        execute(PROG, block, G, HEAP, ENV)
